open Selest_util

(* Classic hashtable + doubly-linked recency list; every operation is
   O(1) apart from the eviction sweep, which is amortized O(1). *)

type node = {
  key : string;
  mutable value : float;
  mutable prev : node option;  (* towards the hot (most recent) end *)
  mutable next : node option;  (* towards the cold end *)
}

type t = {
  capacity : int;
  tbl : (string, node) Hashtbl.t;
  mutable hot : node option;
  mutable cold : node option;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity_bytes =
  if capacity_bytes <= 0 then
    invalid_arg "Lru.create: capacity_bytes must be positive";
  {
    capacity = capacity_bytes;
    tbl = Hashtbl.create 256;
    hot = None;
    cold = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let entry_bytes key = String.length key + Bytesize.per_param

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.hot <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.cold <- n.prev);
  n.prev <- None;
  n.next <- None

let push_hot t n =
  n.next <- t.hot;
  n.prev <- None;
  (match t.hot with Some h -> h.prev <- Some n | None -> t.cold <- Some n);
  t.hot <- Some n

let evict_cold t =
  match t.cold with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.key;
    t.bytes <- t.bytes - entry_bytes n.key;
    t.evictions <- t.evictions + 1

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
    t.hits <- t.hits + 1;
    unlink t n;
    push_hot t n;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    None

let add t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some n ->
    n.value <- value;
    unlink t n;
    push_hot t n
  | None ->
    let n = { key; value; prev = None; next = None } in
    Hashtbl.add t.tbl key n;
    push_hot t n;
    t.bytes <- t.bytes + entry_bytes key);
  while t.bytes > t.capacity && t.cold <> None do
    evict_cold t
  done

let mem t key = Hashtbl.mem t.tbl key
let length t = Hashtbl.length t.tbl
let bytes t = t.bytes
let capacity_bytes t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let keys_hot_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.hot

let clear t =
  Hashtbl.reset t.tbl;
  t.hot <- None;
  t.cold <- None;
  t.bytes <- 0
