open Selest_util
open Selest_db

(* Hashtable + sentinel-ring recency list, indexed on the 63-bit
   canonical query hash the zero-copy front-end computes.  Every warm
   operation is allocation-free: the ring uses direct node pointers (no
   [option] boxing on promote), a hit returns the resident [entry]
   record, and a miss raises the preallocated [Not_found].  Entries
   carry pre-rendered text and binary responses plus the canonical
   snapshot ({!Selest_db.Squery.Vec}) the server verifies hash hits
   against — full-key comparison happens only when a probe's hash
   matches, so the fast path never rebuilds a key string. *)

type entry = {
  est : float;
  text : string;  (* full text response, trailing newline included *)
  bin : string;  (* full encoded binary value frame *)
  vec : Squery.Vec.t;  (* canonical query, for collision verification *)
  model : string;
  version : int;
}

type node = {
  mutable hash : int;
  mutable entry : entry;
  mutable prev : node;  (* towards the hot (most recent) end *)
  mutable next : node;  (* towards the cold end *)
}

type t = {
  capacity : int;
  tbl : (int, node) Hashtbl.t;
  head : node;  (* sentinel: [head.next] hottest, [head.prev] coldest *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable collisions : int;
}

let dummy_entry =
  { est = 0.0; text = ""; bin = ""; vec = Squery.Vec.empty; model = "";
    version = 0 }

let create ~capacity_bytes =
  if capacity_bytes <= 0 then
    invalid_arg "Lru.create: capacity_bytes must be positive";
  let rec head =
    { hash = min_int; entry = dummy_entry; prev = head; next = head }
  in
  {
    capacity = capacity_bytes;
    tbl = Hashtbl.create 256;
    head;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    collisions = 0;
  }

(* Byte accounting: the hash key is one word; the payload is the vec
   snapshot, the two rendered responses, the model name, and one stored
   parameter for the estimate itself. *)
let entry_bytes e =
  Squery.Vec.bytes e.vec + String.length e.text + String.length e.bin
  + String.length e.model + Bytesize.per_param

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_hot t n =
  n.next <- t.head.next;
  n.prev <- t.head;
  t.head.next.prev <- n;
  t.head.next <- n

let evict_cold t =
  let n = t.head.prev in
  if n != t.head then begin
    unlink n;
    Hashtbl.remove t.tbl n.hash;
    t.bytes <- t.bytes - entry_bytes n.entry;
    t.evictions <- t.evictions + 1
  end

let find t hash =
  match Hashtbl.find t.tbl hash with
  | n ->
    t.hits <- t.hits + 1;
    unlink n;
    push_hot t n;
    n.entry
  | exception Not_found ->
    t.misses <- t.misses + 1;
    raise Not_found

let collision t =
  t.hits <- t.hits - 1;
  t.misses <- t.misses + 1;
  t.collisions <- t.collisions + 1

let add t hash entry =
  (match Hashtbl.find_opt t.tbl hash with
  | Some n ->
    t.bytes <- t.bytes - entry_bytes n.entry + entry_bytes entry;
    n.entry <- entry;
    unlink n;
    push_hot t n
  | None ->
    let n = { hash; entry; prev = t.head; next = t.head } in
    Hashtbl.replace t.tbl hash n;
    push_hot t n;
    t.bytes <- t.bytes + entry_bytes entry);
  while t.bytes > t.capacity && t.head.prev != t.head do
    evict_cold t
  done

let mem t hash = Hashtbl.mem t.tbl hash
let length t = Hashtbl.length t.tbl
let bytes t = t.bytes
let capacity_bytes t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let collisions t = t.collisions

let hashes_hot_first t =
  let rec go acc n = if n == t.head then List.rev acc else go (n.hash :: acc) n.next in
  go [] t.head.next

let clear t =
  Hashtbl.reset t.tbl;
  t.head.next <- t.head;
  t.head.prev <- t.head;
  t.bytes <- 0
