(** Service counters and latency quantiles — a façade over the sharded
    telemetry core.

    The serving constraint the paper's offline/online split implies —
    estimates must arrive in optimizer time, i.e. microseconds — is only
    checkable if the service measures itself.  This module keeps named
    monotonic counters (requests, cache hits/misses, errors, per-model
    inference counts) and HDR log-bucketed latency histograms
    ({!Selest_obs.Histogram}) from which p50…p999 are read without
    storing individual samples.

    Since PR 8 nothing here takes a lock on the hot path: every write
    lands on the calling domain's {!Selest_obs.Telemetry} shard
    (lock-free after the named slot exists), and every read merges shard
    snapshots on demand, so [STATS]/[METRICS] never block writers.
    Reads are consistent lower bounds — single-word, monotone values
    that are exact once writers quiesce or a happens-before edge exists
    (e.g. [Domain.join]); there is no longer a single mutex-consistent
    snapshot, and the few-writes-in-flight skew is far below the old
    bucket quantization it replaces.

    {b Quantization}: {!percentile_us} answers with the {e upper edge}
    of the HDR bucket holding the requested quantile — an overstatement
    bounded by 1/128 < 0.8% relative error, replacing the old fixed
    1.5×-geometric buckets whose error was ~50%.  {!mean_latency_us}
    divides the exact running sum by the count and carries no
    quantization at all.  {!report} states this in [lat_quantization]
    and exposes the bucket layout so dashboards can re-bucket; the
    [lat_buckets]/[lat_bucket_base]/[lat_hist] keys predate the HDR
    layout and are kept as aliases for one release. *)

type t

val n_buckets : int
(** Raw buckets in the HDR layout ({!Selest_obs.Histogram.n_buckets}). *)

val bucket_base : float
(** Per-bucket width growth bound of the HDR layout, [1 + 1/128]. *)

val create : unit -> t

val telemetry : t -> Selest_obs.Telemetry.t
(** The underlying sharded telemetry instance (epoch snapshots, deltas,
    per-verb histograms — the HEALTH surface reads through this). *)

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter on the calling domain's shard.  Lock-free;
    concurrent bumps from different domains never lose increments. *)

val get : t -> string -> int
(** Merged value of a counter across all shards; 0 when never bumped. *)

val counters : t -> (string * int) list
(** All counters, merged and sorted by name. *)

(** {2 Allocation-free fast path}

    The warm EST front-end is gated on zero GC allocation end to end, so
    its per-request accounting goes through pre-registered
    {!Selest_obs.Telemetry} handles (integer-indexed shard slots)
    instead of string-keyed lookups.  All of these are allocation-free
    once the calling domain's slot arrays are warm. *)

val counter_handle : t -> string -> Selest_obs.Telemetry.counter_handle
(** Register (or look up) a named counter's handle on the underlying
    telemetry — for callers with their own per-shard counters (the
    server's ["shard.<sid>.requests"]).  Startup-time only. *)

val bump : t -> Selest_obs.Telemetry.counter_handle -> unit
val bump_by : t -> Selest_obs.Telemetry.counter_handle -> int -> unit

val fast_est_request : t -> unit
(** Count one EST request: bumps [requests] and [est_requests]. *)

val fast_est_latency_ns : t -> int -> unit
(** Record one EST latency into the aggregate and ["lat.est"]
    histograms (the handle twin of {!observe_verb_ns} [~verb:"est"]). *)

val frontend_parse_ns : t -> int -> unit
(** Accumulate zero-copy parse time into [frontend.parse_ns]. *)

val frontend_canon_ns : t -> int -> unit
(** Accumulate in-place canonicalization time into
    [frontend.canon_ns]. *)

val frontend_key_ns : t -> int -> unit
(** Accumulate cache-key hashing time into [frontend.key_ns]. *)

val frontend_collision : t -> unit
(** Count one estimate-cache hash hit whose full-key verification
    failed ([frontend.collisions]). *)

val observe : t -> float -> unit
(** Record one request latency, in seconds, into the aggregate
    histogram. *)

val observe_ns : t -> int -> unit
(** Same, in integer nanoseconds — the zero-allocation form the request
    path uses. *)

val observe_verb_ns : t -> verb:string -> int -> unit
(** Record one latency into both the aggregate histogram and the verb's
    own histogram (the per-verb quantiles HEALTH reports). *)

val observe_qerror : t -> string -> est:float -> truth:float -> unit
(** Record one (estimate, ground-truth) pair into the named per-model
    q-error table on the calling domain's shard.  Lock-free after the
    slot exists — the TRUTH path no longer serializes domains. *)

val qerror_shard : t -> string -> Selest_obs.Qerror.t
(** The calling domain's shard-local q-error table for a model name
    (created empty on first use).  Writes through it are merged into
    {!qerror_merged} / {!qerror_tables} reads. *)

val qerror_merged : t -> string -> Selest_obs.Qerror.t
(** Fresh merged copy of a model's q-error table across all shards. *)

val qerror_tables : t -> (string * Selest_obs.Qerror.t) list
(** Every model with q-error observations, merged copies, sorted. *)

val shard_key : int -> string -> string
(** [shard_key 3 "requests"] = ["shard.3.requests"] — the naming scheme
    for per-shard counters in STATS / Prometheus. *)

val observations : t -> int

val mean_latency_us : t -> float
(** Exact mean latency (no bucket quantization); 0 when nothing was
    observed. *)

val percentile_us : t -> float -> float
(** [percentile_us t 0.95]: upper edge of the HDR bucket holding the
    p-th latency quantile, in microseconds (< 0.8% overstatement); 0
    when nothing was observed.  Raises [Invalid_argument] outside
    [0,1]. *)

val histogram : t -> (float * int) array
(** [(upper edge in µs, cumulative count)] coarsened to one bucket per
    octave — Prometheus-ready cumulative form. *)

val latency_sum_us : t -> float
(** Exact sum of observed latencies in µs (the [_sum] series). *)

val verb_histograms : t -> (string * Selest_obs.Histogram.t) list
(** Every verb that has recorded a latency, with its merged histogram,
    sorted by verb name. *)

val lat_key : string
(** Telemetry slot name of the aggregate latency histogram. *)

val verb_key : string -> string
(** [verb_key "est"]: telemetry slot name of a verb's histogram. *)

val latency_histogram : t -> Selest_obs.Histogram.t
(** The merged aggregate latency histogram (a fresh copy). *)

val report : t -> (string * string) list
(** Merged snapshot as [key=value]-ready pairs: the counters (sorted),
    then [lat_count], [lat_mean_us], [lat_p50_us], [lat_p95_us],
    [lat_p99_us], [lat_p999_us], then the bucket layout — [lat_buckets],
    [lat_bucket_base] (per-bucket growth bound), [lat_hist] (nonzero raw
    buckets as [index:count,...], or [-] when empty) — and
    [lat_quantization] documenting the percentile-vs-mean asymmetry. *)

val pp : Format.formatter -> t -> unit
(** One [key=value] pair per line (the shutdown report). *)
