(** Service counters and latency percentiles.

    The serving constraint the paper's offline/online split implies —
    estimates must arrive in optimizer time, i.e. microseconds — is only
    checkable if the service measures itself.  This module keeps named
    monotonic counters (requests, cache hits/misses, errors, per-model
    inference counts) and a log-scale latency histogram from which p50,
    p95 and p99 are read without storing individual samples.

    The histogram buckets grow geometrically (factor 1.5 from 1µs), so
    percentile answers carry at most ~50% relative quantization error over
    a range of microseconds to minutes — the right trade for a counter
    that is bumped on every request of a hot loop. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter, creating it at zero first if needed. *)

val get : t -> string -> int
(** Current value of a counter; 0 when never bumped. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val observe : t -> float -> unit
(** Record one request latency, in seconds. *)

val observations : t -> int
val mean_latency_us : t -> float
(** 0 when nothing was observed. *)

val percentile_us : t -> float -> float
(** [percentile_us t 0.95]: upper edge of the bucket holding the p-th
    latency quantile, in microseconds; 0 when nothing was observed.
    Raises [Invalid_argument] outside [0,1]. *)

val report : t -> (string * string) list
(** Everything above as sorted [key=value]-ready pairs: the counters plus
    [lat_count], [lat_mean_us], [lat_p50_us], [lat_p95_us], [lat_p99_us]
    (latency fields are listed after the counters). *)

val pp : Format.formatter -> t -> unit
(** One [key=value] pair per line (the shutdown report). *)
