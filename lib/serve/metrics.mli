(** Service counters and latency percentiles.

    The serving constraint the paper's offline/online split implies —
    estimates must arrive in optimizer time, i.e. microseconds — is only
    checkable if the service measures itself.  This module keeps named
    monotonic counters (requests, cache hits/misses, errors, per-model
    inference counts) and a log-scale latency histogram from which p50,
    p95 and p99 are read without storing individual samples.

    The histogram buckets grow geometrically (factor {!bucket_base} from
    1µs), so percentile answers carry at most ~50% relative quantization
    error over a range of microseconds to minutes — the right trade for a
    counter that is bumped on every request of a hot loop.

    {b Quantization asymmetry}: {!percentile_us} answers with the {e
    upper edge} of the bucket holding the requested quantile (it can
    overstate the true percentile by up to one bucket ratio), while
    {!mean_latency_us} divides the exact running sum by the count and
    carries no quantization at all.  A p50 slightly above the mean on a
    tight unimodal distribution is therefore an artifact, not a skew
    signal.  {!report} states this in [lat_quantization] and exposes the
    bucket layout so dashboards can re-bucket.

    All operations are mutex-guarded: [ESTBATCH] bumps counters from
    {!Selest_util.Pool} workers while the dispatcher serves [STATS], and
    {!report} takes the same lock so its snapshot is consistent under
    concurrent writers. *)

type t

val n_buckets : int
val bucket_base : float

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter, creating it at zero first if needed.
    Thread-safe; concurrent bumps never lose increments. *)

val get : t -> string -> int
(** Current value of a counter; 0 when never bumped. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val observe : t -> float -> unit
(** Record one request latency, in seconds. *)

val observations : t -> int

val mean_latency_us : t -> float
(** Exact mean latency (no bucket quantization); 0 when nothing was
    observed. *)

val percentile_us : t -> float -> float
(** [percentile_us t 0.95]: upper edge of the bucket holding the p-th
    latency quantile, in microseconds; 0 when nothing was observed.
    Raises [Invalid_argument] outside [0,1]. *)

val histogram : t -> (float * int) array
(** [(upper edge in µs, cumulative count)] for every bucket —
    Prometheus-ready cumulative form. *)

val latency_sum_us : t -> float
(** Exact sum of observed latencies in µs (the [_sum] series). *)

val report : t -> (string * string) list
(** One consistent snapshot as [key=value]-ready pairs: the counters
    (sorted), then [lat_count], [lat_mean_us], [lat_p50_us],
    [lat_p95_us], [lat_p99_us], then the bucket layout — [lat_buckets]
    (bucket count), [lat_bucket_base] (geometric ratio), [lat_hist]
    (nonzero raw buckets as [index:count,...], or [-] when empty) — and
    [lat_quantization] documenting the percentile-vs-mean asymmetry. *)

val pp : Format.formatter -> t -> unit
(** One [key=value] pair per line (the shutdown report). *)
