(* Entry-count LRU of compiled plans, same hashtable + recency-list
   structure as {!Lru} but generic in the payload.  Since the
   allocation-free front-end, the table indexes on the caller's
   precomputed 64-bit key hash ({!Canon.Skel}); the rendered key string
   is stored beside each entry and compared only when a probe's hash
   matches — i.e. full-key verification happens exactly once per lookup
   that could be a collision, never as part of key construction.  A true
   collision (equal hashes, different keys) evicts the resident entry:
   with 63-bit FNV over short keys this is a theoretical case, and
   keeping one chain per hash keeps the probe branch-free.

   Two modes: the default mutex-guarded one (the ESTBATCH worker pool of
   a single-shard server shares one instance, and a miss compiles under
   the lock so one skeleton never compiles twice concurrently), and an
   unsynchronized one for shard-per-domain servers where each executor
   domain owns a private instance and the request path must stay
   lock-free. *)

type node = {
  hash : int;
  key : string;  (* full rendered key, for collision verification *)
  plan : Selest_plan.Plan.t;
  mutable prev : node option;  (* towards the hot (most recent) end *)
  mutable next : node option;  (* towards the cold end *)
}

type t = {
  capacity : int;
  tbl : (int, node) Hashtbl.t;
  mutex : Mutex.t;
  sync : bool;
  mutable hot : node option;
  mutable cold : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable collisions : int;
}

let create ?(capacity = 256) ?(synchronized = true) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create 64;
    mutex = Mutex.create ();
    sync = synchronized;
    hot = None;
    cold = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    collisions = 0;
  }

let synchronized t = t.sync

let locked t f =
  if t.sync then begin
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f
  end
  else f ()

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.hot <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.cold <- n.prev);
  n.prev <- None;
  n.next <- None

let push_hot t n =
  n.next <- t.hot;
  n.prev <- None;
  (match t.hot with Some h -> h.prev <- Some n | None -> t.cold <- Some n);
  t.hot <- Some n

let evict_cold t =
  match t.cold with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.hash;
    t.evictions <- t.evictions + 1

let insert t ~hash ~key ~compile =
  t.misses <- t.misses + 1;
  let plan = compile () in
  let n = { hash; key; plan; prev = None; next = None } in
  Hashtbl.replace t.tbl hash n;
  push_hot t n;
  while Hashtbl.length t.tbl > t.capacity do
    evict_cold t
  done;
  (plan, `Miss)

let find_or_compile t ~hash ~key ~compile =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl hash with
      | Some n when String.equal n.key key ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_hot t n;
        (n.plan, `Hit)
      | Some n ->
        (* hash collision: evict the resident entry, compile ours *)
        t.collisions <- t.collisions + 1;
        unlink t n;
        Hashtbl.remove t.tbl n.hash;
        t.evictions <- t.evictions + 1;
        insert t ~hash ~key ~compile
      | None -> insert t ~hash ~key ~compile)

let stats t = locked t (fun () -> (t.hits, t.misses, t.evictions))
let collisions t = locked t (fun () -> t.collisions)

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.hot <- None;
      t.cold <- None)
