(* Entry-count LRU of compiled plans, same hashtable + recency-list
   structure as {!Lru} but generic in the payload and mutex-guarded: the
   ESTBATCH worker pool shares one instance, and a miss compiles under
   the lock so one skeleton never compiles twice concurrently. *)

type node = {
  key : string;
  plan : Selest_plan.Plan.t;
  mutable prev : node option;  (* towards the hot (most recent) end *)
  mutable next : node option;  (* towards the cold end *)
}

type t = {
  capacity : int;
  tbl : (string, node) Hashtbl.t;
  mutex : Mutex.t;
  mutable hot : node option;
  mutable cold : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    capacity;
    tbl = Hashtbl.create 64;
    mutex = Mutex.create ();
    hot = None;
    cold = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.hot <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.cold <- n.prev);
  n.prev <- None;
  n.next <- None

let push_hot t n =
  n.next <- t.hot;
  n.prev <- None;
  (match t.hot with Some h -> h.prev <- Some n | None -> t.cold <- Some n);
  t.hot <- Some n

let evict_cold t =
  match t.cold with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.key;
    t.evictions <- t.evictions + 1

let find_or_compile t ~key ~compile =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_hot t n;
        (n.plan, `Hit)
      | None ->
        t.misses <- t.misses + 1;
        let plan = compile () in
        let n = { key; plan; prev = None; next = None } in
        Hashtbl.add t.tbl key n;
        push_hot t n;
        while Hashtbl.length t.tbl > t.capacity do
          evict_cold t
        done;
        (plan, `Miss))

let stats t =
  Mutex.lock t.mutex;
  let r = (t.hits, t.misses, t.evictions) in
  Mutex.unlock t.mutex;
  r

let length t =
  Mutex.lock t.mutex;
  let r = Hashtbl.length t.tbl in
  Mutex.unlock t.mutex;
  r

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.tbl;
  t.hot <- None;
  t.cold <- None;
  Mutex.unlock t.mutex
