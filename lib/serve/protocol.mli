(** The line-oriented wire protocol of the estimation service.

    One request per line, one response line per request, UTF-8/ASCII text
    over a Unix-domain socket — deliberately trivial so any optimizer,
    script or [socat] session can speak it.

    {2 Requests}

    {v
    PING
    LOAD <name> <path>
    EST [@<model>] <tvars> [; <joins> [; <selects>]]
    ESTBATCH [@<model>] <body> || <body> || ...
    EXPLAIN [@<model>] <body>
    EXPLAINPLAN [@<model>] <body>
    TRUTH [@<model>] <true-size> <body>
    STATS
    METRICS
    HEALTH
    SHARDS
    SLOWLOG [<count>]
    SHUTDOWN
    v}

    Command words are case-insensitive.  The [EST] query body uses the
    textual query syntax of {!Selest_db.Qparse}, with the three clause
    sections separated by [;] and items within a section separated by
    top-level commas (commas inside a set predicate's [{...}] braces do
    not split), e.g.

    {v
    EST c=contact, p=patient ; c.patient=p ; p.USBorn=yes, c.Contype={household,roommate}
    v}

    [@<model>] selects a registry entry by name; without it the server
    answers from the most recently loaded model.

    [ESTBATCH] carries several [EST] bodies separated by [||] and answers
    them in one round trip: cache probes stay on the dispatcher, misses
    are fanned out across the server's domain pool.  It answers
    [OK <e1> <e2> ...] in request order, or a single [ERR] naming the
    first offending body if {e any} body fails (all-or-nothing, so the
    response shape is always predictable).

    [EXPLAIN] runs the same query as [EST] but always performs inference
    (the estimate cache is probed and reported, never short-circuited)
    and answers with the per-stage time and hot-path op breakdown plus
    the elimination order used — see {!Server}.

    [EXPLAINPLAN] is the optimizer's view of the same query: the server
    picks the C_out-minimal join order under the model's sub-query
    estimates ({!Selest_opt.Optimizer}, AVI fallback for sub-queries the
    model cannot price), executes it with the materializing hash-join
    executor ({!Selest_opt.Hashjoin}), and answers a multi-line
    postgres-style tree with estimated vs. actual rows per operator.

    [TRUTH] supplies ground truth for a query: the server computes its
    estimate (through the cache like [EST]) and records the q-error into
    the model's rolling accuracy histogram, answering
    [OK qerror=<q> estimate=<e> n=<count>].  [STATS] and [METRICS]
    expose the per-model q-error summaries.

    [HEALTH] answers a multi-line SLO report: per-verb latency quantiles
    (p50/p95/p99/p999 from the HDR histograms), error-budget burn
    against the declared latency and q-error SLOs, cache hit rates and
    per-model accuracy — see {!Server}.

    [SHARDS] answers a multi-line view of the shard-per-domain layout:
    a header with the domain count, admission budget and listener
    backlog, then one line per shard with its live connection count,
    total accepted connections, request total and per-shard cache
    sizes — the introspection surface for the sharded server.

    [SLOWLOG \[<count>\]] dumps the newest [count] (default 10) entries
    of the tail-sampled slow-log: requests whose latency crossed the
    quantile-derived threshold or whose [TRUTH] q-error crossed the
    accuracy gate, each with its canonical query and captured span
    tree (multi-line response).

    {2 Responses}

    [PONG] for [PING]; [OK <payload>] for success; [ERR <message>] for any
    failure — a protocol error never terminates the server.  [EST] answers
    [OK <estimate>] with the estimate printed losslessly ([%.17g]); [STATS]
    answers [OK] followed by space-separated [key=value] pairs.

    [METRICS] is the one multi-line response: a header line
    [OK lines=<k>] followed by [k] raw lines of Prometheus text
    exposition ({!Selest_obs.Prometheus}).  {!extra_lines} tells a
    line-oriented client how much to read after any response header.

    {2 Binary upgrade}

    A client may send the text line [BIN] as its {e first} (or any)
    request; the server answers [OK bin] and the connection switches to
    length-prefixed binary frames ({!Bin}) for the rest of its life —
    [EST] and [ESTBATCH] only, no float formatting or line parsing on
    the hot path.  The text protocol is unchanged for clients that never
    upgrade. *)

type request =
  | Ping
  | Load of { name : string; path : string }
  | Est of { model : string option; body : string }
      (** [body] is the raw query text after the optional [@model]. *)
  | Estbatch of { model : string option; bodies : string list }
      (** [bodies] are the [||]-separated query texts, in request order. *)
  | Explain of { model : string option; body : string }
      (** [EST] with a per-stage breakdown instead of a bare estimate. *)
  | Explainplan of { model : string option; body : string }
      (** Optimize the query's join order under the model's estimates,
          execute the chosen tree, and render it postgres-style with
          estimated vs. actual per-operator cardinalities (multi-line
          response). *)
  | Truth of { model : string option; truth : float; body : string }
      (** Ground truth for [body]; feeds the model's q-error histogram. *)
  | Stats
  | Metrics  (** Prometheus text exposition (multi-line response). *)
  | Health  (** SLO report: per-verb quantiles, budget burn (multi-line). *)
  | Shards  (** Shard layout and per-shard load (multi-line response). *)
  | Slowlog of { n : int option }
      (** Newest [n] (default 10) tail-sampled slow-log entries
          (multi-line response). *)
  | Shutdown

val parse_request : string -> (request, string) result
(** Errors mention the offending command, never raise. *)

val split_sections : string -> string list * string list * string list
(** Split an [EST] body into (tvars, joins, selects) item lists: sections
    on [;], items on top-level commas, blanks dropped.  Raises [Failure]
    on more than three sections or an empty tvars section. *)

val ok : string -> string
val err : string -> string
(** Response constructors; [err] flattens newlines so a response is always
    exactly one line. *)

val busy : string -> string
(** [BUSY <reason>] — the 503-style admission-control rejection an
    overloaded server writes before closing the connection.  Distinct
    from [ERR]: the request was never looked at, retrying later is the
    right client response. *)

val ok_multiline : string -> string
(** [ok_multiline payload]: the [OK lines=<k>] header followed by the
    payload's lines verbatim (a trailing newline is dropped first). *)

val extra_lines : string -> int
(** Number of payload lines following a response header: [k] for an
    [OK lines=<k>] header, 0 for every single-line response. *)

val pong : string

val is_ok : string -> bool
val is_err : string -> bool
(** [is_ok] accepts [PONG] too — it is [PING]'s success response. *)

val is_busy : string -> bool
(** Recognize an admission-control [BUSY] rejection. *)

val payload : string -> string
(** The response text after the status word ([""] when none). *)

val stats_field : string -> string -> string option
(** [stats_field response key]: the value of [key=...] in a [STATS]
    response payload. *)

(** Length-prefixed binary frames for the estimation hot path.

    Wire format (all integers big-endian):

    {v
    frame    := u32 payload-length, payload        (length <= 16 MiB)

    request  := 0x01 u16 model-len, model, body          (EST)
              | 0x02 u16 model-len, model,
                     u16 count, { u32 body-len, body }*  (ESTBATCH)

    response := 0x00 f64                                 (OK estimate)
              | 0x01 u16 count, f64*                     (OK batch)
              | 0x02 utf-8 message                       (ERR)
    v}

    A zero-length model name selects the server's default model (the
    text protocol's missing [@model]).  Query bodies are the same
    textual syntax as [EST] — only the framing and the floats are
    binary, so estimates cross the wire losslessly as IEEE-754 bits
    instead of [%.17g] text.  Decoders are total: truncated or garbage
    payloads yield [Error], never an exception. *)
module Bin : sig
  val hello : string
  (** ["BIN"] — the text line that upgrades a connection. *)

  val hello_ok : string
  (** ["OK bin"] — the server's acknowledgement, sent as a text line. *)

  val max_frame : int
  (** Maximum payload length accepted or produced (16 MiB). *)

  type brequest =
    | Best of { model : string option; body : string }
    | Bestbatch of { model : string option; bodies : string list }

  type bresponse =
    | Bvalue of float
    | Bvalues of float list  (** In request order, like [ESTBATCH]. *)
    | Berr of string

  val encode_request : brequest -> string
  (** The complete frame, length prefix included.  Raises
      [Invalid_argument] past the format's limits (model > 64 KiB - 1,
      more than 65535 bodies, frame > {!max_frame}). *)

  val decode_request : bytes -> (brequest, string) result
  (** Parse a request payload (prefix already stripped).  Total. *)

  val encode_response : bresponse -> string

  val decode_response : bytes -> (bresponse, string) result

  val read_frame :
    in_channel -> [ `Frame of bytes | `Eof | `Oversized of int ]
  (** Read one length-prefixed frame.  [`Eof] on a clean end of stream
      (including mid-frame truncation); [`Oversized] when the announced
      length exceeds {!max_frame} — the stream cannot be resynchronized
      and should be closed. *)

  val write_frame : out_channel -> string -> unit
  (** Write an encoded frame and flush. *)
end

(** Zero-copy request recognition for the allocation-free front-end.

    A slice scratch is filled with (offset, length) pairs into the
    caller's buffer — no strings are built.  The recognizers accept a
    strict {e subset} of the reference parsers ({!parse_request},
    {!Bin.decode_request}): exact uppercase [EST], a well-formed
    [@model] token, a non-empty body.  They answer [false] for
    everything else, so callers fall back to the reference path and
    keep identical observable behavior (error messages included) off
    the fast path. *)
module Slice : sig
  type t = {
    mutable model_off : int;
    mutable model_len : int;  (** [0] selects the default model. *)
    mutable body_off : int;
    mutable body_len : int;
  }

  val create : unit -> t

  val est_line : t -> Bytes.t -> off:int -> len:int -> bool
  (** Recognize [EST [@model] <body>] in [buf[off..off+len)] (one text
      line, newline already stripped) and fill the slices.
      Allocation-free. *)

  val bin_est : t -> Bytes.t -> off:int -> len:int -> bool
  (** Recognize a {!Bin} [EST] request payload (opcode [0x01]) in
      [buf[off..off+len)] — the frame body, length prefix already
      stripped.  Allocation-free. *)
end
