(** Tree-structured conditional probability distributions (Sec. 2.2,
    Fig. 2(b)).

    Interior vertices split on the value of a parent variable — either one
    branch per value (multiway) or a threshold cut for ordinal parents, as
    in the paper's Age >= 55 example — and leaves hold distributions over
    the child.  Trees spend parameters only where the data warrants a
    distinction, which is why they dominate table CPDs at equal storage in
    the paper's Fig. 5. *)

type node =
  | Leaf of { dist : float array; weight : float }
  | Split of { pindex : int; arms : arms }
      (** [pindex] indexes into the CPD's parent array *)

and arms =
  | Multi of node array  (** child per parent value *)
  | Thresh of int * node * node  (** [Thresh (cut, lo, hi)]: value < cut goes lo *)

type t = private {
  child_card : int;
  parents : int array;  (** variable ids, strictly increasing *)
  parent_cards : int array;
  parent_ordinal : bool array;
  root : node;
  n_leaves : int;
  n_splits : int;
  fitted_weight : float;
}

val fit :
  Data.t -> child:int -> parents:int array -> ?param_budget:int ->
  ?gain_threshold:float -> unit -> t
(** Greedy best-first growth: repeatedly apply the leaf split with the best
    likelihood-gain-per-parameter ratio, while total parameters stay within
    [param_budget] (default unlimited) and each split gains at least
    [gain_threshold] bits per parameter it adds (default [log2 N / 2], a
    BIC-style floor that stops useless splits).  Leaves fit maximum-
    likelihood child frequencies. *)

val fit_counted :
  Selest_prob.Counts.t -> table:int -> Data.t -> child:int -> parents:int array ->
  ?param_budget:int -> ?gain_threshold:float -> unit -> t
(** [fit] served from a count-once group-by kernel instead of row scans:
    every split-gain and leaf statistic is an aggregation of a cached joint
    count over (path parents, candidate parent, child), registered in the
    kernel under table id [table].  The data is scanned once per distinct
    attribute set — across every fit sharing the kernel — rather than once
    per query.  On unweighted data the result is bitwise identical to
    [fit]'s (all counts are exact integer floats, so accumulation order
    cannot matter); weighted data is rejected with [Invalid_argument]. *)

val leaf : float array -> node
(** Hand-construct a (normalized) leaf, for explicit models in tests. *)

val of_tree :
  child_card:int -> parents:int array -> parent_cards:int array ->
  ?parent_ordinal:bool array -> node -> t
(** Validate and wrap an explicit tree. *)

val dist : t -> int array -> float array
(** Child distribution for a parent assignment (in [parents] order). *)

val n_params : t -> int
(** [n_leaves * (child_card - 1) + 2 * n_splits]: leaf distributions plus
    the split variable and cut stored at each interior vertex. *)

val n_parents : t -> int

val used_parents : t -> int array
(** Parents actually split on somewhere in the tree (some proposed parents
    may turn out useless). *)

val refit : t -> Data.t -> child:int -> t
(** Keep the tree structure; refresh every leaf distribution from new data
    (the parameter-only update of incremental model maintenance). *)

val loglik : t -> Data.t -> child:int -> float
(** Data log-likelihood in bits. *)

val loglik_tabulated : t -> Data.t -> child:int -> float
(** [loglik] with each leaf's log2 values computed once instead of once per
    row — bitwise equal (same inputs, same row-order accumulation), several
    times cheaper on wide data. *)

val to_factor : var_of:(int -> int) -> child:int -> t -> Selest_prob.Factor.t
val depth : t -> int
val pp : names:(int -> string) -> Format.formatter -> t -> unit
