(** Variable elimination (the standard exact BN inference of [19]).

    Works on bags of factors, so the same engine serves single-table BNs
    and the query-evaluation networks PRMs build (Def. 3.5).  Elimination
    order is chosen greedily by minimum intermediate-factor size — now
    computed incrementally on the interaction graph (eliminating a
    variable only invalidates its neighbors' costs) instead of rescanning
    every factor per candidate per step, and memoized per query shape in a
    small LRU keyed by the caller's [plan_key].  Execution fuses each
    multiply-then-sum step into one {!Selest_prob.Factor.sum_out_product}
    kernel over a domain-local scratch pool, so a run performs O(1) large
    allocations once warm.  All of this is bit-compatible with the
    pre-optimization engine kept in {!Reference}. *)

type evidence = (int * Selest_db.Query.pred) list
(** Variable id paired with the predicate it must satisfy.  [Eq] evidence
    slices factors; set/range evidence zeroes disallowed values and lets
    elimination sum the allowed ones — range queries cost nothing extra. *)

val apply_evidence : Selest_prob.Factor.t -> evidence -> Selest_prob.Factor.t

val normalize_evidence : Selest_prob.Factor.t list -> evidence -> evidence option
(** Conjoin multiple predicates on the same variable into one [Eq] /
    [In_set] entry; drop entries whose merged mask allows every value (a
    no-op predicate); [None] if some variable has no allowed value left
    (contradictory evidence).  Raises [Invalid_argument] if a variable is
    unknown or a value is out of range. *)

val plan_order : keep:int array -> Selest_prob.Factor.t list -> int list
(** Greedy min-intermediate-size elimination order over every variable not
    in [keep] ([keep] must be sorted).  Exposed for tests and benches. *)

val eliminate_all : Selest_prob.Factor.t list -> float
(** Multiply all factors and sum out every variable: the total mass. *)

val prob_of_evidence :
  ?plan_key:string -> Selest_prob.Factor.t list -> evidence -> float
(** P(evidence) under the normalized distribution the factors define.
    When the factors are a BN's CPDs the distribution is already
    normalized and this is simply the evidence mass.

    [plan_key] must uniquely identify the factor-graph structure (e.g.
    model fingerprint × query skeleton); when given, the elimination order
    is looked up in / saved to a process-wide LRU keyed by
    ([plan_key] × evidence structure), so repeated query shapes skip
    planning.  Omitting it always plans from scratch. *)

val posterior :
  ?plan_key:string ->
  Selest_prob.Factor.t list ->
  evidence ->
  keep:int array ->
  Selest_prob.Factor.t
(** Normalized joint marginal of the [keep] variables given the evidence.
    [plan_key] as in {!prob_of_evidence}. *)

val order_cache_stats : unit -> int * int
(** (hits, misses) of the elimination-order LRU. *)

val order_cache_clear : unit -> unit

(** The pre-optimization engine, verbatim: per-step greedy cost scans over
    the whole factor list, pairwise products, naive per-entry factor
    kernels ({!Selest_prob.Factor.Reference}).  The optimized path must
    produce bit-identical results; kept as the benchmark baseline and
    property-test oracle. *)
module Reference : sig
  val eliminate_all : Selest_prob.Factor.t list -> float
  val prob_of_evidence : Selest_prob.Factor.t list -> evidence -> float

  val posterior :
    Selest_prob.Factor.t list ->
    evidence ->
    keep:int array ->
    Selest_prob.Factor.t
end
