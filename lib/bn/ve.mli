(** Variable elimination (the standard exact BN inference of [19]).

    Works on bags of factors, so the same engine serves single-table BNs
    and the query-evaluation networks PRMs build (Def. 3.5).  Elimination
    order is chosen greedily by minimum intermediate-factor size —
    computed incrementally on the interaction graph (eliminating a
    variable only invalidates its neighbors' costs) instead of rescanning
    every factor per candidate per step.  The order, together with each
    step's predicted intermediate size, is exposed as a first-class
    {!Schedule.t} value: callers that answer repeated query shapes (the
    plan IR in [lib/plan]) memoize schedules themselves instead of going
    through a hidden process-global cache.  Execution fuses each
    multiply-then-sum step into one {!Selest_prob.Factor.sum_out_product}
    kernel over a domain-local scratch pool, so a run performs O(1) large
    allocations once warm.  All of this is bit-compatible with the
    pre-optimization engine kept in {!Reference}. *)

type evidence = (int * Selest_db.Query.pred) list
(** Variable id paired with the predicate it must satisfy.  [Eq] evidence
    slices factors; set/range evidence zeroes disallowed values and lets
    elimination sum the allowed ones — range queries cost nothing extra. *)

val apply_evidence : Selest_prob.Factor.t -> evidence -> Selest_prob.Factor.t

val normalize_evidence : Selest_prob.Factor.t list -> evidence -> evidence option
(** Conjoin multiple predicates on the same variable into one [Eq] /
    [In_set] entry; drop entries whose merged mask allows every value (a
    no-op predicate); [None] if some variable has no allowed value left
    (contradictory evidence).  Raises [Invalid_argument] if a variable is
    unknown or a value is out of range. *)

(** An elimination schedule: the greedy order plus, per step, the entry
    count of the intermediate factor the planner predicted when it chose
    that step (the product of the eliminated variable's induced-graph
    neighbor cardinalities).  Predicted sizes are exact for the factor
    bag the schedule was planned on; runtime counters
    ({!Selest_obs.Hotpath}) report the actual sizes for comparison. *)
module Schedule : sig
  type step = { var : int; predicted_entries : int }

  type t = { order : int list; steps : step list }
  (** [order = List.map (fun s -> s.var) steps]; kept separately so
      execution never rebuilds it. *)

  val plan : keep:int array -> Selest_prob.Factor.t list -> t
  (** Greedy min-intermediate-size schedule over every variable not in
      [keep] ([keep] must be sorted). *)

  val pp : Format.formatter -> t -> unit
  (** Compact [var:entries > var:entries > …] rendering, shared by the
      CLI explain mode and the server's [EXPLAIN] verb. *)
end

val plan_order : keep:int array -> Selest_prob.Factor.t list -> int list
(** [(Schedule.plan ~keep factors).order].  Exposed for tests and
    benches. *)

type prepared
(** Evidence applied, not yet eliminated: the restricted factor bag plus
    the set of variables the evidence sliced away.  Single-use — {!run}
    consumes it (intermediates are recycled through the scratch pool). *)

val merged_masks :
  Selest_prob.Factor.t list -> evidence -> (int * bool array) list option
(** Merge the evidence into one allowed-value mask per variable (their
    conjunction), in first-mention order.  [None] if any variable ends
    with no allowed value (contradictory evidence).  Raises
    [Invalid_argument] on unknown variables or out-of-range values.
    Callers classifying evidence shapes (e.g. the plan compiler's
    value-slot vs mask-slot split) key off the allowed counts. *)

val prepare : Selest_prob.Factor.t list -> evidence -> prepared option
(** Merge the evidence ({!normalize_evidence} semantics) and apply it to
    every factor.  [None] on contradictory evidence — the event is empty,
    its probability zero.  Raises [Invalid_argument] on unknown variables
    or out-of-range values. *)

val restricted_vars : prepared -> int list
(** The variables the evidence restricted to a single value, sorted.
    Together with the keep set this determines the restricted factor
    shapes, hence the schedule — it is the memo key plan caches use. *)

val prepared_factors : prepared -> Selest_prob.Factor.t list

val run : prepared -> order:int list -> float
(** Eliminate along [order] with the fused kernels and return the total
    remaining mass.  [order] must cover every variable of the prepared
    factors (plan on {!prepared_factors}). *)

val eliminate_all : Selest_prob.Factor.t list -> float
(** Multiply all factors and sum out every variable: the total mass. *)

val prob_of_evidence : Selest_prob.Factor.t list -> evidence -> float
(** P(evidence) under the normalized distribution the factors define.
    When the factors are a BN's CPDs the distribution is already
    normalized and this is simply the evidence mass.  Plans from scratch
    on every call; repeated query shapes should compile a plan
    ([lib/plan]) and reuse its memoized schedules instead. *)

val posterior :
  Selest_prob.Factor.t list ->
  evidence ->
  keep:int array ->
  Selest_prob.Factor.t
(** Normalized joint marginal of the [keep] variables given the
    evidence.  Raises [Invalid_argument] on contradictory evidence. *)

(** The pre-optimization engine, verbatim: per-step greedy cost scans over
    the whole factor list, pairwise products, naive per-entry factor
    kernels ({!Selest_prob.Factor.Reference}).  The optimized path must
    produce bit-identical results; kept as the benchmark baseline and
    property-test oracle. *)
module Reference : sig
  val eliminate_all : Selest_prob.Factor.t list -> float
  val prob_of_evidence : Selest_prob.Factor.t list -> evidence -> float

  val posterior :
    Selest_prob.Factor.t list ->
    evidence ->
    keep:int array ->
    Selest_prob.Factor.t
end
