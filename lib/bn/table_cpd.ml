open Selest_util
open Selest_prob

type t = {
  child_card : int;
  parents : int array;
  parent_cards : int array;
  table : float array;
  fitted_weight : float;
}

let check_parents parents =
  for i = 1 to Array.length parents - 1 do
    if parents.(i - 1) >= parents.(i) then
      invalid_arg "Table_cpd: parents must be strictly increasing"
  done

let n_configs parent_cards = Array.fold_left ( * ) 1 parent_cards

let normalize_rows ~child_card table =
  let configs = Array.length table / child_card in
  for cfg = 0 to configs - 1 do
    let base = cfg * child_card in
    let total = ref 0.0 in
    for v = 0 to child_card - 1 do
      total := !total +. table.(base + v)
    done;
    if !total > 0.0 then
      for v = 0 to child_card - 1 do
        table.(base + v) <- table.(base + v) /. !total
      done
    else
      for v = 0 to child_card - 1 do
        table.(base + v) <- 1.0 /. float_of_int child_card
      done
  done

let fit data ~child ~parents =
  check_parents parents;
  let child_card = data.Data.cards.(child) in
  let parent_cards = Array.map (fun p -> data.Data.cards.(p)) parents in
  let configs = n_configs parent_cards in
  let table = Array.make (configs * child_card) 0.0 in
  let child_col = data.Data.cols.(child) in
  let parent_cols = Array.map (fun p -> data.Data.cols.(p)) parents in
  let np = Array.length parents in
  for r = 0 to data.Data.n - 1 do
    let cfg = ref 0 in
    for i = 0 to np - 1 do
      cfg := (!cfg * parent_cards.(i)) + parent_cols.(i).(r)
    done;
    let idx = (!cfg * child_card) + child_col.(r) in
    table.(idx) <- table.(idx) +. Data.weight data r
  done;
  Counts.record_scan ();
  normalize_rows ~child_card table;
  { child_card; parents; parent_cards; table; fitted_weight = Data.total_weight data }

let fit_counted kernel ~table:table_id data ~child ~parents =
  (* The kernel's prefix key over dims = parents @ [child] is exactly
     [fit]'s configuration index, and on unweighted data both accumulate
     exact integer counts — the normalized table is bitwise identical.
     The kernel array is shared, so copy before normalizing in place. *)
  if data.Data.weights <> None then
    invalid_arg "Table_cpd.fit_counted: weighted data is not supported";
  check_parents parents;
  let child_card = data.Data.cards.(child) in
  let parent_cards = Array.map (fun p -> data.Data.cards.(p)) parents in
  let dims = Array.append parents [| child |] in
  let cards = Array.append parent_cards [| child_card |] in
  let cols = Array.map (fun a -> data.Data.cols.(a)) dims in
  let counts =
    Counts.counts kernel ~table:table_id ~dims ~cards ~cols ~n_rows:data.Data.n
  in
  let table = Array.copy counts in
  normalize_rows ~child_card table;
  { child_card; parents; parent_cards; table; fitted_weight = Data.total_weight data }

let of_table ~child_card ~parents ~parent_cards table =
  check_parents parents;
  if Array.length parents <> Array.length parent_cards then
    invalid_arg "Table_cpd.of_table: parents/cards mismatch";
  if Array.length table <> n_configs parent_cards * child_card then
    invalid_arg "Table_cpd.of_table: wrong table size";
  let table = Array.copy table in
  normalize_rows ~child_card table;
  { child_card; parents; parent_cards; table; fitted_weight = 0.0 }

let config_of t pvals =
  let cfg = ref 0 in
  for i = 0 to Array.length t.parents - 1 do
    let v = pvals.(i) in
    if v < 0 || v >= t.parent_cards.(i) then invalid_arg "Table_cpd.dist: value out of range";
    cfg := (!cfg * t.parent_cards.(i)) + v
  done;
  !cfg

let dist t pvals =
  if Array.length pvals <> Array.length t.parents then
    invalid_arg "Table_cpd.dist: wrong number of parent values";
  let cfg = config_of t pvals in
  Array.sub t.table (cfg * t.child_card) t.child_card

let n_params t = n_configs t.parent_cards * (t.child_card - 1)
let n_parents t = Array.length t.parents

let loglik t data ~child =
  let child_col = data.Data.cols.(child) in
  let parent_cols = Array.map (fun p -> data.Data.cols.(p)) t.parents in
  let np = Array.length t.parents in
  let acc = ref 0.0 in
  for r = 0 to data.Data.n - 1 do
    let cfg = ref 0 in
    for i = 0 to np - 1 do
      cfg := (!cfg * t.parent_cards.(i)) + parent_cols.(i).(r)
    done;
    let p = t.table.((!cfg * t.child_card) + child_col.(r)) in
    acc := !acc +. (Data.weight data r *. Arrayx.log2 (Float.max p 1e-300))
  done;
  Counts.record_scan ();
  !acc

let loglik_tabulated t data ~child =
  (* [loglik] with the table's log2 values precomputed once; same per-row
     accumulation over identical floats, so the sum is bitwise equal. *)
  let logt = Array.map (fun p -> Arrayx.log2 (Float.max p 1e-300)) t.table in
  let child_col = data.Data.cols.(child) in
  let parent_cols = Array.map (fun p -> data.Data.cols.(p)) t.parents in
  let np = Array.length t.parents in
  let acc = ref 0.0 in
  for r = 0 to data.Data.n - 1 do
    let cfg = ref 0 in
    for i = 0 to np - 1 do
      cfg := (!cfg * t.parent_cards.(i)) + parent_cols.(i).(r)
    done;
    acc := !acc +. (Data.weight data r *. logt.((!cfg * t.child_card) + child_col.(r)))
  done;
  Counts.record_scan ();
  !acc

let to_factor ~var_of ~child t =
  (* Scope = child + parents under the renaming; Factor requires sorted
     variable ids, so build by tabulation. *)
  let scope =
    Array.append [| (var_of child, (-1)) |]
      (Array.mapi (fun i p -> (var_of p, i)) t.parents)
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) scope;
  let vars = Array.map fst scope in
  for i = 1 to Array.length vars - 1 do
    if vars.(i - 1) = vars.(i) then invalid_arg "Table_cpd.to_factor: var_of not injective"
  done;
  let cards =
    Array.map
      (fun (_, role) -> if role = -1 then t.child_card else t.parent_cards.(role))
      scope
  in
  let pvals = Array.make (Array.length t.parents) 0 in
  Factor.of_fun ~vars ~cards (fun asg ->
      let child_val = ref 0 in
      Array.iteri
        (fun i (_, role) ->
          if role = -1 then child_val := asg.(i) else pvals.(role) <- asg.(i))
        scope;
      let cfg = config_of t pvals in
      t.table.((cfg * t.child_card) + !child_val))
