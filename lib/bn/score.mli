(** Decomposable structure scores and the family-score cache (Sec. 4.1,
    4.3.1).

    The log-likelihood of a structure decomposes into per-family terms
    (Eq. 5): for tables the term is [-N * H(child | parents)] (equivalently
    [N * MI(child; parents)] plus a structure-independent constant); for
    trees it is the fitted tree's data log-likelihood.  Because a
    hill-climbing move changes one family only, terms are cached and reused
    across search iterations — the incremental-evaluation trick the paper
    highlights at the end of Sec. 4.3.3. *)

type family = {
  loglik : float;  (** maximized family log-likelihood, bits *)
  params : int;  (** free parameters of the fitted CPD *)
  bytes : int;  (** storage cost under {!Selest_util.Bytesize} accounting *)
  cpd : Cpd.t;
}

type cache

val create_cache : kind:Cpd.kind -> ?counts:Selest_prob.Counts.t * int -> Data.t -> cache
(** [counts] plugs in a count-once group-by kernel (and the table id this
    data registers under): family fits are then served from cached joint
    counts ({!Table_cpd.fit_counted} / {!Tree_cpd.fit_counted}) with
    tabulated log-likelihoods — bitwise identical scores, one data scan per
    distinct attribute set instead of per fit.  Ignored for weighted data,
    where only the row-scan path preserves bit identity. *)

val family : ?max_params:int -> cache -> child:int -> parents:int array -> family
(** Fit (or recall) the family's CPD and score.  [max_params] caps the
    fitted tree's size (so a tight budget can still consider a smaller
    tree); it never shrinks a table CPD, whose size is structural.  The
    unconstrained fit is cached first and reused whenever it already fits
    the cap. *)

val family_capped : cache -> child:int -> parents:int array -> cap:int -> family
(** The cap-constrained fit alone, for callers that already know the
    unconstrained tree exceeds [cap] — the incremental climbers hold base
    fits in their move caches and re-derive only the capped variant when
    the byte budget tightens, skipping {!family}'s base-entry probe.
    Identical to [family ~max_params:cap] under that precondition. *)

val structure_loglik : cache -> Dag.t -> float
(** Σ family log-likelihoods: the [Score(S | D)] of Sec. 4.3.1. *)

val structure_bytes : cache -> Dag.t -> int
(** Model storage: CPD bytes plus per-node overhead. *)

val mutual_information : Data.t -> int array -> int array -> float
(** Empirical MI between two variable groups, in bits — exposed for tests
    and for reporting learned-structure quality. *)

val mdl_penalty_per_param : Data.t -> float
(** [log2 N / 2]: the per-parameter description-length charge used by the
    MDL move-selection rule. *)

val n_evaluations : cache -> int
(** Families actually fitted (cache misses) — used to verify incremental
    evaluation. *)
