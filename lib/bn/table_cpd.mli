(** Tabular conditional probability distributions.

    One distribution over the child per joint parent configuration, stored
    densely.  Simple and fast to fit, but its size is exponential in the
    number of parents — the paper's motivation for tree CPDs. *)

type t = private {
  child_card : int;
  parents : int array;  (** variable ids, strictly increasing *)
  parent_cards : int array;
  table : float array;  (** [config * child_card + child], rows normalized *)
  fitted_weight : float;  (** total data weight used in fitting *)
}

val fit : Data.t -> child:int -> parents:int array -> t
(** Maximum-likelihood fit (relative frequencies, Eq. 4).  Parent
    configurations never seen in the data get the uniform distribution. *)

val fit_counted :
  Selest_prob.Counts.t -> table:int -> Data.t -> child:int -> parents:int array -> t
(** [fit] served from a count-once group-by kernel: the contingency over
    [parents @ [child]] comes from (and stays cached in) the kernel under
    table id [table], so repeated fits over overlapping families share one
    data scan per distinct attribute set.  Bitwise identical to [fit] on
    unweighted data; weighted data is rejected with [Invalid_argument]. *)

val of_table : child_card:int -> parents:int array -> parent_cards:int array -> float array -> t
(** Build from explicit (already per-row normalized or normalizable)
    entries — used by tests and by hand-constructed models. *)

val dist : t -> int array -> float array
(** Child distribution for one parent assignment (in [parents] order).
    The returned array is the live row — do not mutate. *)

val n_params : t -> int
(** Free parameters: [configs * (child_card - 1)]. *)

val n_parents : t -> int

val loglik : t -> Data.t -> child:int -> float
(** Data log-likelihood (bits) of the child column under this CPD. *)

val loglik_tabulated : t -> Data.t -> child:int -> float
(** [loglik] with the table's log2 values precomputed once — bitwise equal,
    cheaper when the same CPD scores many rows. *)

val to_factor : var_of:(int -> int) -> child:int -> t -> Selest_prob.Factor.t
(** Factor P(child | parents) over renamed variable ids; [var_of] maps the
    CPD's variable ids (child and parents) to the target graph's ids. *)
