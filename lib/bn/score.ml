open Selest_util
open Selest_prob

type family = { loglik : float; params : int; bytes : int; cpd : Cpd.t }

type cache = {
  kind : Cpd.kind;
  data : Data.t;
  counts : (Counts.t * int) option;
      (* count-once kernel + the table id this data registers under; None =
         fit by direct row scans (the reference cost model) *)
  table : (int * int list * int option, family) Hashtbl.t;
  mutex : Mutex.t;
  mutable evaluations : int;
}

let create_cache ~kind ?counts data =
  (* The kernel path is only bit-identical on unweighted data (exact
     integer counts); weighted data silently keeps the scan path. *)
  let counts = if data.Data.weights = None then counts else None in
  { kind; data; counts; table = Hashtbl.create 256; mutex = Mutex.create (); evaluations = 0 }

let family_bytes ~params ~n_parents = Bytesize.params params + Bytesize.values n_parents

let compute cache ~child ~parents ~max_params =
  match cache.kind with
  | Cpd.Tables ->
    let cpd =
      match cache.counts with
      | Some (kernel, table) -> Table_cpd.fit_counted kernel ~table cache.data ~child ~parents
      | None -> Table_cpd.fit cache.data ~child ~parents
    in
    (* For ML table CPDs the data log-likelihood equals -N·H(child|parents),
       but computing it from the fitted table in one scan is just as fast
       and shares the code path with trees. *)
    let loglik =
      match cache.counts with
      | Some _ -> Table_cpd.loglik_tabulated cpd cache.data ~child
      | None -> Table_cpd.loglik cpd cache.data ~child
    in
    let params = Table_cpd.n_params cpd in
    {
      loglik;
      params;
      bytes = family_bytes ~params ~n_parents:(Array.length parents);
      cpd = Cpd.Table cpd;
    }
  | Cpd.Trees ->
    let cpd =
      match cache.counts with
      | Some (kernel, table) ->
        Tree_cpd.fit_counted kernel ~table cache.data ~child ~parents
          ?param_budget:max_params ()
      | None -> Tree_cpd.fit cache.data ~child ~parents ?param_budget:max_params ()
    in
    let loglik =
      match cache.counts with
      | Some _ -> Tree_cpd.loglik_tabulated cpd cache.data ~child
      | None -> Tree_cpd.loglik cpd cache.data ~child
    in
    let params = Tree_cpd.n_params cpd in
    {
      loglik;
      params;
      bytes = family_bytes ~params ~n_parents:(Array.length parents);
      cpd = Cpd.Tree cpd;
    }

(* Cache accessors are mutex-protected so structure search can score
   candidate moves from several domains at once.  Fits run outside the
   lock (they are the expensive part and touch only immutable data); on a
   racing double-compute the first entry wins, so every caller sees one
   canonical family per key.  The evaluation counter counts insertions —
   identical to compute calls under sequential use. *)
let cache_find cache key =
  Mutex.lock cache.mutex;
  let r = Hashtbl.find_opt cache.table key in
  Mutex.unlock cache.mutex;
  r

let cache_add cache key f =
  Mutex.lock cache.mutex;
  let r =
    match Hashtbl.find_opt cache.table key with
    | Some existing -> existing
    | None ->
      cache.evaluations <- cache.evaluations + 1;
      Hashtbl.add cache.table key f;
      f
  in
  Mutex.unlock cache.mutex;
  r

let family ?max_params cache ~child ~parents =
  (* The unconstrained fit is tried (and cached) first; a parameter cap
     only produces a distinct entry when the natural tree exceeds it, so a
     search under a tight budget still reuses most fits. *)
  let base_key = (child, Array.to_list parents, None) in
  let base =
    match cache_find cache base_key with
    | Some f -> f
    | None -> cache_add cache base_key (compute cache ~child ~parents ~max_params:None)
  in
  match max_params with
  | None -> base
  | Some cap when base.params <= cap || cache.kind = Cpd.Tables -> base
  | Some cap -> (
    let key = (child, Array.to_list parents, Some cap) in
    match cache_find cache key with
    | Some f -> f
    | None -> cache_add cache key (compute cache ~child ~parents ~max_params:(Some cap)))

(* For callers that already hold the unconstrained fit and know it busts
   the cap (the incremental climbers cache base fits across iterations and
   only re-derive the capped variant): skip the base-entry probe that
   [family] repeats on every lookup.  Produces exactly the entry
   [family ~max_params:cap] would for a tree whose natural fit exceeds
   [cap], insertion-counting included. *)
let family_capped cache ~child ~parents ~cap =
  let key = (child, Array.to_list parents, Some cap) in
  match cache_find cache key with
  | Some f -> f
  | None -> cache_add cache key (compute cache ~child ~parents ~max_params:(Some cap))

let structure_loglik cache dag =
  let acc = ref 0.0 in
  for v = 0 to Dag.n_nodes dag - 1 do
    acc := !acc +. (family cache ~child:v ~parents:(Dag.parents dag v)).loglik
  done;
  !acc

let structure_bytes cache dag =
  let acc = ref (Bytesize.values (Dag.n_nodes dag)) in
  for v = 0 to Dag.n_nodes dag - 1 do
    acc := !acc + (family cache ~child:v ~parents:(Dag.parents dag v)).bytes
  done;
  !acc

let mutual_information data xs ys =
  let all = Array.of_list (List.sort_uniq compare (Array.to_list xs @ Array.to_list ys)) in
  let joint = Data.contingency data all in
  let pos v =
    let rec loop i = if all.(i) = v then i else loop (i + 1) in
    loop 0
  in
  let positions group =
    let p = Array.map pos group in
    Array.sort compare p;
    p
  in
  Info.mutual_information joint (positions xs) (positions ys)

let mdl_penalty_per_param data = Arrayx.log2 (Float.max 2.0 (Data.total_weight data)) /. 2.0

let n_evaluations cache = cache.evaluations
