open Selest_prob
open Selest_db

type evidence = (int * Query.pred) list

let var_card factors v =
  let rec scan = function
    | [] -> raise Not_found
    | f :: rest ->
      let vars = Factor.vars f and cards = Factor.cards f in
      let rec look i =
        if i >= Array.length vars then scan rest
        else if vars.(i) = v then cards.(i)
        else look (i + 1)
      in
      look 0
  in
  scan factors

let all_vars factors =
  List.sort_uniq compare
    (List.concat_map (fun f -> Array.to_list (Factor.vars f)) factors)

let mentions f v = Factor.mentions f v

let apply_evidence f ev =
  List.fold_left
    (fun f (v, pred) ->
      match pred with
      | Query.Eq x -> Factor.restrict f v x
      | Query.In_set xs -> Factor.observe f v (fun u -> List.mem u xs)
      | Query.Range (lo, hi) -> Factor.observe f v (fun u -> lo <= u && u <= hi))
    f ev

(* ---- evidence normalization ---------------------------------------------

   Merge multiple predicates on one variable into a single allowed-value
   mask (their conjunction).  Restricting a factor twice on the same
   variable would silently ignore the second predicate, so this
   normalization is required for correctness, not just tidiness. *)

(* (v, mask) pairs in first-mention order; None on a contradiction. *)
let merged_masks factors ev =
  let allowed : (int, bool array) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (v, pred) ->
      let card =
        try var_card factors v
        with Not_found -> invalid_arg "Ve: evidence variable not in any factor"
      in
      let check x =
        if x < 0 || x >= card then invalid_arg "Ve: evidence value out of range"
      in
      (match pred with
      | Query.Eq x -> check x
      | Query.In_set xs -> List.iter check xs
      | Query.Range (lo, hi) ->
        check lo;
        check hi);
      let mask =
        match Hashtbl.find_opt allowed v with
        | Some m -> m
        | None ->
          let m = Array.make card true in
          Hashtbl.add allowed v m;
          order := v :: !order;
          m
      in
      for x = 0 to card - 1 do
        if not (Query.pred_holds pred x) then mask.(x) <- false
      done)
    ev;
  let merged = List.rev_map (fun v -> (v, Hashtbl.find allowed v)) !order in
  if List.exists (fun (_, m) -> not (Array.exists Fun.id m)) merged then None
  else Some merged

(* Per-variable actions derived from the masks.  A single allowed value
   restricts (removing the variable); an all-true mask is a no-op and is
   dropped; anything else zeroes the disallowed slabs. *)
type action = Restrict of int | Mask of bool array

let actions_of_masks merged =
  List.filter_map
    (fun (v, mask) ->
      let n_allowed = Array.fold_left (fun n ok -> if ok then n + 1 else n) 0 mask in
      if n_allowed = Array.length mask then None
      else if n_allowed = 1 then begin
        let x = ref 0 in
        while not mask.(!x) do incr x done;
        Some (v, Restrict !x)
      end
      else Some (v, Mask mask))
    merged

let normalize_evidence factors ev =
  match merged_masks factors ev with
  | None -> None
  | Some merged ->
    Some
      (List.filter_map
         (fun (v, act) ->
           match act with
           | Restrict x -> Some (v, Query.Eq x)
           | Mask mask ->
             let values = ref [] in
             for x = Array.length mask - 1 downto 0 do
               if mask.(x) then values := x :: !values
             done;
             Some (v, Query.In_set !values))
         (actions_of_masks merged))

let apply_actions f actions =
  List.fold_left
    (fun f (v, act) ->
      match act with
      | Restrict x -> Factor.restrict f v x
      | Mask mask -> Factor.observe_mask f v mask)
    f actions

(* ---- elimination planning -----------------------------------------------

   Greedy minimum-intermediate-size ordering, computed on the interaction
   graph instead of by rescanning the factor list: eliminating v touches
   only the costs of v's neighbors, so each step recomputes O(deg) costs
   rather than O(V·F) (the induced-graph neighborhoods coincide with the
   scope unions the factor-scan version computes, so the resulting order —
   including tie-breaks — is identical). *)

let plan_order ~keep factors =
  let card : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let adj : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let vs = Factor.vars f and cs = Factor.cards f in
      Array.iteri
        (fun i v ->
          if not (Hashtbl.mem card v) then begin
            Hashtbl.add card v cs.(i);
            Hashtbl.add adj v (Hashtbl.create 4)
          end)
        vs;
      Array.iter
        (fun v ->
          let nbrs = Hashtbl.find adj v in
          Array.iter (fun u -> if u <> v then Hashtbl.replace nbrs u ()) vs)
        vs)
    factors;
  let cost v =
    let c = ref (float_of_int (Hashtbl.find card v)) in
    Hashtbl.iter
      (fun u () -> c := !c *. float_of_int (Hashtbl.find card u))
      (Hashtbl.find adj v);
    !c
  in
  let candidates =
    List.filter (fun v -> not (Factor.mem_sorted keep v))
      (List.sort_uniq compare (Hashtbl.fold (fun v _ acc -> v :: acc) card []))
  in
  let costs : (int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace costs v (cost v)) candidates;
  let remaining = ref candidates in
  let order = ref [] in
  while !remaining <> [] do
    let v =
      List.fold_left
        (fun best v ->
          match best with
          | None -> Some (v, Hashtbl.find costs v)
          | Some (_, c0) ->
            let c = Hashtbl.find costs v in
            if c < c0 then Some (v, c) else best)
        None !remaining
      |> Option.get |> fst
    in
    order := v :: !order;
    remaining := List.filter (fun u -> u <> v) !remaining;
    let nbrs = Hashtbl.find adj v in
    let nlist = Hashtbl.fold (fun u () acc -> u :: acc) nbrs [] in
    List.iter (fun u -> Hashtbl.remove (Hashtbl.find adj u) v) nlist;
    List.iter
      (fun u ->
        let u_nbrs = Hashtbl.find adj u in
        List.iter (fun w -> if u <> w then Hashtbl.replace u_nbrs w ()) nlist)
      nlist;
    Hashtbl.remove adj v;
    List.iter
      (fun u -> if Hashtbl.mem costs u then Hashtbl.replace costs u (cost u))
      nlist
  done;
  List.rev !order

(* ---- elimination-order cache --------------------------------------------

   Orders keyed by (caller-supplied plan key × the evidence structure):
   the plan key identifies the factor-graph shape (model fingerprint ×
   query skeleton), the restricted variables and the keep set identify how
   evidence reshapes it.  Repeated query shapes — the common case behind
   the serving cache — skip planning entirely.  Mutex-protected so the
   domain pool can run inference concurrently. *)

module Order_cache = struct
  let capacity = 256

  (* [order_str] is the order pre-rendered for span attributes, so a
     traced cache hit never rebuilds the string. *)
  type entry = { order : int list; order_str : string; mutable stamp : int }

  let table : (string, entry) Hashtbl.t = Hashtbl.create capacity
  let mutex = Mutex.create ()
  let clock = ref 0
  let hits = ref 0
  let misses = ref 0

  let find key =
    Mutex.lock mutex;
    let r =
      match Hashtbl.find_opt table key with
      | Some e ->
        incr clock;
        e.stamp <- !clock;
        incr hits;
        Some (e.order, e.order_str)
      | None ->
        incr misses;
        None
    in
    Mutex.unlock mutex;
    r

  let add key order order_str =
    Mutex.lock mutex;
    if not (Hashtbl.mem table key) then begin
      if Hashtbl.length table >= capacity then begin
        (* evict the least recently used entry (rare after warm-up) *)
        let victim = ref None in
        Hashtbl.iter
          (fun k e ->
            match !victim with
            | Some (_, s) when s <= e.stamp -> ()
            | _ -> victim := Some (k, e.stamp))
          table;
        match !victim with Some (k, _) -> Hashtbl.remove table k | None -> ()
      end;
      incr clock;
      Hashtbl.add table key { order; order_str; stamp = !clock }
    end;
    Mutex.unlock mutex

  let clear () =
    Mutex.lock mutex;
    Hashtbl.reset table;
    hits := 0;
    misses := 0;
    Mutex.unlock mutex

  let stats () =
    Mutex.lock mutex;
    let r = (!hits, !misses) in
    Mutex.unlock mutex;
    r
end

let order_cache_stats = Order_cache.stats
let order_cache_clear = Order_cache.clear

let order_key plan_key ~actions ~keep =
  let buf = Buffer.create 64 in
  Buffer.add_string buf plan_key;
  Buffer.add_string buf "|eq:";
  List.iter
    (fun (v, act) ->
      match act with
      | Restrict _ ->
        Buffer.add_string buf (string_of_int v);
        Buffer.add_char buf ','
      | Mask _ -> ())
    actions;
  Buffer.add_string buf "|keep:";
  Array.iter
    (fun v ->
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ',')
    keep;
  Buffer.contents buf

let attr_of_order order = String.concat "," (List.map string_of_int order)

let order_for ?plan_key ~actions ~keep factors =
  Selest_obs.Span.with_ "ve.plan" (fun sp ->
      (* attr strings only when a sink will see them *)
      let note cached order_str =
        if Selest_obs.Span.live sp then begin
          Selest_obs.Span.add sp "cached" cached;
          Selest_obs.Span.add sp "order" order_str
        end
      in
      match plan_key with
      | None ->
        let order = plan_order ~keep factors in
        if Selest_obs.Span.live sp then note "none" (attr_of_order order);
        order
      | Some pk -> (
        let key = order_key pk ~actions ~keep in
        match Order_cache.find key with
        | Some (order, order_str) ->
          Selest_obs.Hotpath.order_hit ();
          note "hit" order_str;
          order
        | None ->
          Selest_obs.Hotpath.order_miss ();
          let order = plan_order ~keep factors in
          let order_str = attr_of_order order in
          Order_cache.add key order order_str;
          note "miss" order_str;
          order))

(* ---- execution -----------------------------------------------------------

   One fused multiply-and-sum kernel per eliminated variable; intermediate
   tables live in a domain-local scratch pool, so a full run performs O(1)
   large allocations once the pool is warm.  Ownership: factors created
   here (or freshly allocated by evidence application) are released back
   to the pool when consumed; caller-supplied factors never are. *)

let scratch_key = Domain.DLS.new_key Factor.scratch

let local_scratch () = Domain.DLS.get scratch_key

let eliminate_step scratch fs v =
  let touching, rest = List.partition (fun (f, _) -> Factor.mentions f v) fs in
  match touching with
  | [] -> fs
  | _ ->
    let nf = Factor.sum_out_product ~scratch (List.map fst touching) v in
    List.iter (fun (f, owned) -> if owned then Factor.release scratch f) touching;
    (nf, true) :: rest

let run_order scratch fs order = List.fold_left (eliminate_step scratch) fs order

let total_of scratch fs =
  let acc =
    List.fold_left (fun acc (f, _) -> acc *. Factor.total f) 1.0 fs
  in
  List.iter (fun (f, owned) -> if owned then Factor.release scratch f) fs;
  acc

let eliminate_all factors =
  let order = plan_order ~keep:[||] factors in
  let scratch = local_scratch () in
  let fs = List.map (fun f -> (f, false)) factors in
  total_of scratch (run_order scratch fs order)

let restricted_factors factors actions =
  List.map
    (fun f ->
      let g = apply_actions f actions in
      (g, g != f))
    factors

let prob_of_evidence ?plan_key factors ev =
  let prep =
    Selest_obs.Span.with_ "ve.evidence" (fun _ ->
        match merged_masks factors ev with
        | None -> None (* contradictory evidence: empty event *)
        | Some merged ->
          let actions = actions_of_masks merged in
          Some (actions, restricted_factors factors actions))
  in
  match prep with
  | None -> 0.0
  | Some (actions, fs) ->
    let bare = List.map fst fs in
    let order = order_for ?plan_key ~actions ~keep:[||] bare in
    let scratch = local_scratch () in
    Selest_obs.Span.with_ "ve.eliminate" (fun _ ->
        total_of scratch (run_order scratch fs order))

let posterior ?plan_key factors ev ~keep =
  let actions, fs =
    Selest_obs.Span.with_ "ve.evidence" (fun _ ->
        let merged =
          match merged_masks factors ev with
          | Some m -> m
          | None -> invalid_arg "Ve.posterior: contradictory evidence"
        in
        let actions = actions_of_masks merged in
        (actions, restricted_factors factors actions))
  in
  let keep_sorted = Array.copy keep in
  Array.sort compare keep_sorted;
  let bare = List.map fst fs in
  let order = order_for ?plan_key ~actions ~keep:keep_sorted bare in
  let scratch = local_scratch () in
  let remaining =
    Selest_obs.Span.with_ "ve.eliminate" (fun _ -> run_order scratch fs order)
  in
  let result =
    match remaining with
    | [] -> Factor.constant 1.0
    | fs -> Factor.normalize (Factor.product_all (List.map fst fs))
  in
  List.iter (fun (f, owned) -> if owned then Factor.release scratch f) remaining;
  result

(* ---- reference implementation --------------------------------------------

   The pre-optimization engine, verbatim: per-step greedy cost scans over
   the whole factor list, pairwise products, naive per-entry kernels.  The
   optimized path above must agree with it bit for bit; kept as the
   benchmark baseline and property-test oracle. *)

module Reference = struct
  let apply_evidence f ev =
    List.fold_left
      (fun f (v, pred) ->
        match pred with
        | Query.Eq x -> Factor.Reference.restrict f v x
        | Query.In_set xs -> Factor.Reference.observe f v (fun u -> List.mem u xs)
        | Query.Range (lo, hi) ->
          Factor.Reference.observe f v (fun u -> lo <= u && u <= hi))
      f ev

  let elimination_cost factors v =
    let scope = Hashtbl.create 8 in
    List.iter
      (fun f ->
        if mentions f v then begin
          let vars = Factor.vars f and cards = Factor.cards f in
          Array.iteri (fun i u -> Hashtbl.replace scope u cards.(i)) vars
        end)
      factors;
    Hashtbl.fold (fun _ c acc -> acc *. float_of_int c) scope 1.0

  let eliminate_var factors v =
    let touching, rest = List.partition (fun f -> mentions f v) factors in
    match touching with
    | [] -> factors
    | f :: fs ->
      let prod = List.fold_left Factor.Reference.product f fs in
      Factor.Reference.sum_out prod v :: rest

  let eliminate_all factors =
    let rec loop factors =
      match all_vars factors with
      | [] -> List.fold_left (fun acc f -> acc *. Factor.total f) 1.0 factors
      | vars ->
        let v =
          List.fold_left
            (fun best v ->
              match best with
              | None -> Some (v, elimination_cost factors v)
              | Some (_, c0) ->
                let c = elimination_cost factors v in
                if c < c0 then Some (v, c) else best)
            None vars
          |> Option.get |> fst
        in
        loop (eliminate_var factors v)
    in
    loop factors

  let normalize_evidence factors ev =
    match merged_masks factors ev with
    | None -> None
    | Some merged ->
      Some
        (List.map
           (fun (v, mask) ->
             let values = ref [] in
             for x = Array.length mask - 1 downto 0 do
               if mask.(x) then values := x :: !values
             done;
             (v, match !values with [ x ] -> Query.Eq x | xs -> Query.In_set xs))
           merged)

  let prob_of_evidence factors ev =
    match normalize_evidence factors ev with
    | None -> 0.0
    | Some merged ->
      let restricted = List.map (fun f -> apply_evidence f merged) factors in
      eliminate_all restricted

  let posterior factors ev ~keep =
    let merged =
      match normalize_evidence factors ev with
      | Some m -> m
      | None -> invalid_arg "Ve.posterior: contradictory evidence"
    in
    let restricted = List.map (fun f -> apply_evidence f merged) factors in
    let keep_list = Array.to_list keep in
    let rec loop factors =
      let vars =
        List.filter (fun v -> not (List.mem v keep_list)) (all_vars factors)
      in
      match vars with
      | [] -> (
        match factors with
        | [] -> Factor.constant 1.0
        | f :: fs ->
          Factor.normalize (List.fold_left Factor.Reference.product f fs))
      | vars ->
        let v =
          List.fold_left
            (fun best v ->
              match best with
              | None -> Some (v, elimination_cost factors v)
              | Some (_, c0) ->
                let c = elimination_cost factors v in
                if c < c0 then Some (v, c) else best)
            None vars
          |> Option.get |> fst
        in
        loop (eliminate_var factors v)
    in
    loop restricted
end
