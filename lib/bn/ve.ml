open Selest_prob
open Selest_db

type evidence = (int * Query.pred) list

let var_card factors v =
  let rec scan = function
    | [] -> raise Not_found
    | f :: rest ->
      let vars = Factor.vars f and cards = Factor.cards f in
      let rec look i =
        if i >= Array.length vars then scan rest
        else if vars.(i) = v then cards.(i)
        else look (i + 1)
      in
      look 0
  in
  scan factors

let all_vars factors =
  List.sort_uniq compare
    (List.concat_map (fun f -> Array.to_list (Factor.vars f)) factors)

let mentions f v = Factor.mentions f v

let apply_evidence f ev =
  List.fold_left
    (fun f (v, pred) ->
      match pred with
      | Query.Eq x -> Factor.restrict f v x
      | Query.In_set xs -> Factor.observe f v (fun u -> List.mem u xs)
      | Query.Range (lo, hi) -> Factor.observe f v (fun u -> lo <= u && u <= hi))
    f ev

(* ---- evidence normalization ---------------------------------------------

   Merge multiple predicates on one variable into a single allowed-value
   mask (their conjunction).  Restricting a factor twice on the same
   variable would silently ignore the second predicate, so this
   normalization is required for correctness, not just tidiness. *)

(* (v, mask) pairs in first-mention order; None on a contradiction. *)
let merged_masks factors ev =
  let allowed : (int, bool array) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (v, pred) ->
      let card =
        try var_card factors v
        with Not_found -> invalid_arg "Ve: evidence variable not in any factor"
      in
      let check x =
        if x < 0 || x >= card then invalid_arg "Ve: evidence value out of range"
      in
      (match pred with
      | Query.Eq x -> check x
      | Query.In_set xs -> List.iter check xs
      | Query.Range (lo, hi) ->
        check lo;
        check hi);
      let mask =
        match Hashtbl.find_opt allowed v with
        | Some m -> m
        | None ->
          let m = Array.make card true in
          Hashtbl.add allowed v m;
          order := v :: !order;
          m
      in
      for x = 0 to card - 1 do
        if not (Query.pred_holds pred x) then mask.(x) <- false
      done)
    ev;
  let merged = List.rev_map (fun v -> (v, Hashtbl.find allowed v)) !order in
  if List.exists (fun (_, m) -> not (Array.exists Fun.id m)) merged then None
  else Some merged

(* Per-variable actions derived from the masks.  A single allowed value
   restricts (removing the variable); an all-true mask is a no-op and is
   dropped; anything else zeroes the disallowed slabs. *)
type action = Restrict of int | Mask of bool array

let actions_of_masks merged =
  List.filter_map
    (fun (v, mask) ->
      let n_allowed = Array.fold_left (fun n ok -> if ok then n + 1 else n) 0 mask in
      if n_allowed = Array.length mask then None
      else if n_allowed = 1 then begin
        let x = ref 0 in
        while not mask.(!x) do incr x done;
        Some (v, Restrict !x)
      end
      else Some (v, Mask mask))
    merged

let normalize_evidence factors ev =
  match merged_masks factors ev with
  | None -> None
  | Some merged ->
    Some
      (List.filter_map
         (fun (v, act) ->
           match act with
           | Restrict x -> Some (v, Query.Eq x)
           | Mask mask ->
             let values = ref [] in
             for x = Array.length mask - 1 downto 0 do
               if mask.(x) then values := x :: !values
             done;
             Some (v, Query.In_set !values))
         (actions_of_masks merged))

let apply_actions f actions =
  List.fold_left
    (fun f (v, act) ->
      match act with
      | Restrict x -> Factor.restrict f v x
      | Mask mask -> Factor.observe_mask f v mask)
    f actions

(* ---- elimination planning -----------------------------------------------

   Greedy minimum-intermediate-size ordering, computed on the interaction
   graph instead of by rescanning the factor list: eliminating v touches
   only the costs of v's neighbors, so each step recomputes O(deg) costs
   rather than O(V·F) (the induced-graph neighborhoods coincide with the
   scope unions the factor-scan version computes, so the resulting order —
   including tie-breaks — is identical). *)

type sched_step = { var : int; predicted_entries : int }
type schedule = { order : int list; steps : sched_step list }

let plan_schedule ~keep factors =
  let card : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let adj : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let vs = Factor.vars f and cs = Factor.cards f in
      Array.iteri
        (fun i v ->
          if not (Hashtbl.mem card v) then begin
            Hashtbl.add card v cs.(i);
            Hashtbl.add adj v (Hashtbl.create 4)
          end)
        vs;
      Array.iter
        (fun v ->
          let nbrs = Hashtbl.find adj v in
          Array.iter (fun u -> if u <> v then Hashtbl.replace nbrs u ()) vs)
        vs)
    factors;
  let cost v =
    let c = ref (float_of_int (Hashtbl.find card v)) in
    Hashtbl.iter
      (fun u () -> c := !c *. float_of_int (Hashtbl.find card u))
      (Hashtbl.find adj v);
    !c
  in
  let candidates =
    List.filter (fun v -> not (Factor.mem_sorted keep v))
      (List.sort_uniq compare (Hashtbl.fold (fun v _ acc -> v :: acc) card []))
  in
  let costs : (int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace costs v (cost v)) candidates;
  let remaining = ref candidates in
  let order = ref [] in
  let steps = ref [] in
  while !remaining <> [] do
    let v, cost_v =
      List.fold_left
        (fun best v ->
          match best with
          | None -> Some (v, Hashtbl.find costs v)
          | Some (_, c0) ->
            let c = Hashtbl.find costs v in
            if c < c0 then Some (v, c) else best)
        None !remaining
      |> Option.get
    in
    order := v :: !order;
    (* the intermediate factor's scope is v's induced neighborhood, so
       its size is the selection cost divided by v's own cardinality *)
    let predicted =
      int_of_float (cost_v /. float_of_int (Hashtbl.find card v))
    in
    steps := { var = v; predicted_entries = predicted } :: !steps;
    remaining := List.filter (fun u -> u <> v) !remaining;
    let nbrs = Hashtbl.find adj v in
    let nlist = Hashtbl.fold (fun u () acc -> u :: acc) nbrs [] in
    List.iter (fun u -> Hashtbl.remove (Hashtbl.find adj u) v) nlist;
    List.iter
      (fun u ->
        let u_nbrs = Hashtbl.find adj u in
        List.iter (fun w -> if u <> w then Hashtbl.replace u_nbrs w ()) nlist)
      nlist;
    Hashtbl.remove adj v;
    List.iter
      (fun u -> if Hashtbl.mem costs u then Hashtbl.replace costs u (cost u))
      nlist
  done;
  { order = List.rev !order; steps = List.rev !steps }

module Schedule = struct
  type step = sched_step = { var : int; predicted_entries : int }
  type t = schedule = { order : int list; steps : step list }

  let plan = plan_schedule

  let pp fmt t =
    let pp_step i { var; predicted_entries } =
      if i > 0 then Format.pp_print_string fmt ">";
      Format.fprintf fmt "%d:%d" var predicted_entries
    in
    if t.steps = [] then Format.pp_print_string fmt "-"
    else List.iteri pp_step t.steps
end

let plan_order ~keep factors = (plan_schedule ~keep factors).order

(* The old process-global elimination-order LRU (keyed by caller-supplied
   [plan_key] strings) lived here.  Schedules are now first-class values:
   callers with repeated query shapes memoize {!Schedule.t} per restricted
   variable set themselves — see the plan IR in [lib/plan]. *)

let attr_of_order order = String.concat "," (List.map string_of_int order)

let schedule_for ~keep factors =
  Selest_obs.Span.with_ "ve.plan" (fun sp ->
      let s = plan_schedule ~keep factors in
      if Selest_obs.Span.live sp then begin
        Selest_obs.Span.add sp "cached" "none";
        Selest_obs.Span.add sp "order" (attr_of_order s.order)
      end;
      s)

(* ---- execution -----------------------------------------------------------

   One fused multiply-and-sum kernel per eliminated variable; intermediate
   tables live in a domain-local scratch pool, so a full run performs O(1)
   large allocations once the pool is warm.  Ownership: factors created
   here (or freshly allocated by evidence application) are released back
   to the pool when consumed; caller-supplied factors never are. *)

let scratch_key = Domain.DLS.new_key Factor.scratch

let local_scratch () = Domain.DLS.get scratch_key

let eliminate_step scratch fs v =
  let touching, rest = List.partition (fun (f, _) -> Factor.mentions f v) fs in
  match touching with
  | [] -> fs
  | _ ->
    let nf = Factor.sum_out_product ~scratch (List.map fst touching) v in
    List.iter (fun (f, owned) -> if owned then Factor.release scratch f) touching;
    (nf, true) :: rest

let run_order scratch fs order = List.fold_left (eliminate_step scratch) fs order

let total_of scratch fs =
  let acc =
    List.fold_left (fun acc (f, _) -> acc *. Factor.total f) 1.0 fs
  in
  List.iter (fun (f, owned) -> if owned then Factor.release scratch f) fs;
  acc

let eliminate_all factors =
  let order = plan_order ~keep:[||] factors in
  let scratch = local_scratch () in
  let fs = List.map (fun f -> (f, false)) factors in
  total_of scratch (run_order scratch fs order)

let restricted_factors factors actions =
  List.map
    (fun f ->
      let g = apply_actions f actions in
      (g, g != f))
    factors

type prepared = {
  p_factors : (Factor.t * bool) list;  (* factor, owned-by-the-run *)
  p_restricted : int list;  (* variables sliced to one value, sorted *)
}

let prepare factors ev =
  Selest_obs.Span.with_ "ve.evidence" (fun _ ->
      match merged_masks factors ev with
      | None -> None (* contradictory evidence: empty event *)
      | Some merged ->
        let actions = actions_of_masks merged in
        let restricted =
          List.sort compare
            (List.filter_map
               (fun (v, act) ->
                 match act with Restrict _ -> Some v | Mask _ -> None)
               actions)
        in
        Some
          {
            p_factors = restricted_factors factors actions;
            p_restricted = restricted;
          })

let restricted_vars p = p.p_restricted
let prepared_factors p = List.map fst p.p_factors

let run p ~order =
  let scratch = local_scratch () in
  Selest_obs.Span.with_ "ve.eliminate" (fun _ ->
      total_of scratch (run_order scratch p.p_factors order))

let prob_of_evidence factors ev =
  match prepare factors ev with
  | None -> 0.0
  | Some p ->
    let s = schedule_for ~keep:[||] (prepared_factors p) in
    run p ~order:s.order

let posterior factors ev ~keep =
  match prepare factors ev with
  | None -> invalid_arg "Ve.posterior: contradictory evidence"
  | Some p ->
    let keep_sorted = Array.copy keep in
    Array.sort compare keep_sorted;
    let s = schedule_for ~keep:keep_sorted (prepared_factors p) in
    let scratch = local_scratch () in
    let remaining =
      Selest_obs.Span.with_ "ve.eliminate" (fun _ ->
          run_order scratch p.p_factors s.order)
    in
    let result =
      match remaining with
      | [] -> Factor.constant 1.0
      | fs -> Factor.normalize (Factor.product_all (List.map fst fs))
    in
    List.iter
      (fun (f, owned) -> if owned then Factor.release scratch f)
      remaining;
    result

(* ---- reference implementation --------------------------------------------

   The pre-optimization engine, verbatim: per-step greedy cost scans over
   the whole factor list, pairwise products, naive per-entry kernels.  The
   optimized path above must agree with it bit for bit; kept as the
   benchmark baseline and property-test oracle. *)

module Reference = struct
  let apply_evidence f ev =
    List.fold_left
      (fun f (v, pred) ->
        match pred with
        | Query.Eq x -> Factor.Reference.restrict f v x
        | Query.In_set xs -> Factor.Reference.observe f v (fun u -> List.mem u xs)
        | Query.Range (lo, hi) ->
          Factor.Reference.observe f v (fun u -> lo <= u && u <= hi))
      f ev

  let elimination_cost factors v =
    let scope = Hashtbl.create 8 in
    List.iter
      (fun f ->
        if mentions f v then begin
          let vars = Factor.vars f and cards = Factor.cards f in
          Array.iteri (fun i u -> Hashtbl.replace scope u cards.(i)) vars
        end)
      factors;
    Hashtbl.fold (fun _ c acc -> acc *. float_of_int c) scope 1.0

  let eliminate_var factors v =
    let touching, rest = List.partition (fun f -> mentions f v) factors in
    match touching with
    | [] -> factors
    | f :: fs ->
      let prod = List.fold_left Factor.Reference.product f fs in
      Factor.Reference.sum_out prod v :: rest

  let eliminate_all factors =
    let rec loop factors =
      match all_vars factors with
      | [] -> List.fold_left (fun acc f -> acc *. Factor.total f) 1.0 factors
      | vars ->
        let v =
          List.fold_left
            (fun best v ->
              match best with
              | None -> Some (v, elimination_cost factors v)
              | Some (_, c0) ->
                let c = elimination_cost factors v in
                if c < c0 then Some (v, c) else best)
            None vars
          |> Option.get |> fst
        in
        loop (eliminate_var factors v)
    in
    loop factors

  let normalize_evidence factors ev =
    match merged_masks factors ev with
    | None -> None
    | Some merged ->
      Some
        (List.map
           (fun (v, mask) ->
             let values = ref [] in
             for x = Array.length mask - 1 downto 0 do
               if mask.(x) then values := x :: !values
             done;
             (v, match !values with [ x ] -> Query.Eq x | xs -> Query.In_set xs))
           merged)

  let prob_of_evidence factors ev =
    match normalize_evidence factors ev with
    | None -> 0.0
    | Some merged ->
      let restricted = List.map (fun f -> apply_evidence f merged) factors in
      eliminate_all restricted

  let posterior factors ev ~keep =
    let merged =
      match normalize_evidence factors ev with
      | Some m -> m
      | None -> invalid_arg "Ve.posterior: contradictory evidence"
    in
    let restricted = List.map (fun f -> apply_evidence f merged) factors in
    let keep_list = Array.to_list keep in
    let rec loop factors =
      let vars =
        List.filter (fun v -> not (List.mem v keep_list)) (all_vars factors)
      in
      match vars with
      | [] -> (
        match factors with
        | [] -> Factor.constant 1.0
        | f :: fs ->
          Factor.normalize (List.fold_left Factor.Reference.product f fs))
      | vars ->
        let v =
          List.fold_left
            (fun best v ->
              match best with
              | None -> Some (v, elimination_cost factors v)
              | Some (_, c0) ->
                let c = elimination_cost factors v in
                if c < c0 then Some (v, c) else best)
            None vars
          |> Option.get |> fst
        in
        loop (eliminate_var factors v)
    in
    loop restricted
end
