open Selest_util

let log_src = Logs.Src.create "selest.bn.learn" ~doc:"Bayesian-network structure search"

module Log = (val Logs.src_log log_src : Logs.LOG)

type rule = Naive | Ssn | Mdl

type config = {
  kind : Cpd.kind;
  budget_bytes : int;
  max_parents : int;
  rule : rule;
  random_restarts : int;
  random_walk_length : int;
  seed : int;
}

let default_config ~budget_bytes =
  {
    kind = Cpd.Trees;
    budget_bytes;
    max_parents = 4;
    rule = Ssn;
    random_restarts = 2;
    random_walk_length = 3;
    seed = 0;
  }

type result = {
  bn : Bn.t;
  loglik : float;
  bytes : int;
  iterations : int;
  family_evaluations : int;
  trajectory : string list;
}

type move = Add of int * int | Remove of int * int

let move_dst = function Add (_, v) -> v | Remove (_, v) -> v

let describe_move = function
  | Add (u, v) -> Printf.sprintf "add:%d->%d" u v
  | Remove (u, v) -> Printf.sprintf "remove:%d->%d" u v

(* Search state: the DAG plus the family actually chosen for each node
   (which may be a budget-capped tree, so it must be remembered — a later
   cache lookup without the cap would return a bigger fit). *)
type state = {
  mutable dag : Dag.t;
  families : Score.family array;
  mutable size : int;
}

let apply_move dag = function
  | Add (u, v) -> Dag.add_edge dag ~src:u ~dst:v
  | Remove (u, v) -> Dag.remove_edge dag ~src:u ~dst:v

(* Candidate moves legal w.r.t. acyclicity and the parent bound.
   [add_legal u v] decides acyclicity of a prospective add; move order is
   part of the search contract (ties keep the earliest scored move), so
   the incremental generator reproduces this loop exactly. *)
let candidate_moves_with cfg dag ~add_legal =
  let n = Dag.n_nodes dag in
  let out = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then
        if Dag.has_edge dag ~src:u ~dst:v then out := Remove (u, v) :: !out
        else if Array.length (Dag.parents dag v) < cfg.max_parents && add_legal u v
        then out := Add (u, v) :: !out
    done
  done;
  !out

let candidate_moves cfg dag =
  candidate_moves_with cfg dag ~add_legal:(fun u v ->
      not (Dag.creates_cycle dag ~src:u ~dst:v))

let with_parent parents u =
  let ps = Array.append parents [| u |] in
  Array.sort compare ps;
  ps

let without_parent parents u =
  Array.of_list (List.filter (fun p -> p <> u) (Array.to_list parents))

(* A dense table over the prospective parent set can be enormous; its size
   is known without fitting, so infeasible table moves are rejected before
   paying (memory or time) for the fit. *)
let table_family_bytes data ~child ~parents =
  let configs =
    Array.fold_left
      (fun acc p ->
        let c = data.Data.cards.(p) in
        if acc > (max_int / 8) / c then max_int / 8 else acc * c)
      1 parents
  in
  let params = configs * (data.Data.cards.(child) - 1) in
  Bytesize.params params + Bytesize.values (Array.length parents)

(* Evaluate a move: the new family (possibly budget-capped), its score and
   size deltas.  [None] when the move cannot fit the budget. *)
let evaluate cfg cache data st move =
  let v = move_dst move in
  let old_f = st.families.(v) in
  let old_parents = Dag.parents st.dag v in
  let new_parents =
    match move with
    | Add (u, _) -> with_parent old_parents u
    | Remove (u, _) -> without_parent old_parents u
  in
  let headroom_bytes =
    cfg.budget_bytes - st.size + old_f.Score.bytes
    - Bytesize.values (Array.length new_parents)
  in
  let max_params = headroom_bytes / Bytesize.per_param in
  if max_params < 1 then None
  else begin
    let feasible_upper_bound =
      match cfg.kind with
      | Cpd.Tables ->
        st.size - old_f.Score.bytes + table_family_bytes data ~child:v ~parents:new_parents
        <= cfg.budget_bytes
      | Cpd.Trees -> true
    in
    if not feasible_upper_bound then None
    else begin
      let new_f = Score.family ~max_params cache ~child:v ~parents:new_parents in
      let dbytes = new_f.Score.bytes - old_f.Score.bytes in
      if st.size + dbytes > cfg.budget_bytes then None
      else
        Some
          ( new_f,
            new_f.Score.loglik -. old_f.Score.loglik,
            dbytes,
            new_f.Score.params - old_f.Score.params )
    end
  end

let criterion cfg ~mdl_penalty (dscore, dbytes, dparams) =
  match cfg.rule with
  | Naive -> dscore
  | Ssn ->
    if dbytes > 0 then dscore /. float_of_int dbytes
    else if dscore > 0.0 then Float.infinity
    else dscore
  | Mdl -> dscore -. (mdl_penalty *. float_of_int dparams)

let eps = 1e-6

let accept st move new_f dbytes =
  st.dag <- apply_move st.dag move;
  st.families.(move_dst move) <- new_f;
  st.size <- st.size + dbytes

(* ---- incremental scorer ------------------------------------------------ *)

(* Delta move cache, one table per destination node: everything about a
   candidate move that survives across climb iterations — the proposed
   (sorted) parent set, the dense-table size bound, and the unconstrained
   base fit once computed.  Per iteration only the budget arithmetic runs
   again; trees are refit exactly when the naive climber would refit them
   under a cap, so the trajectory (and the score cache's insertion count)
   is unchanged.  An accepted move resets its destination's table only. *)
type bentry = {
  be_proposed : int array;
  be_dense : int;  (* table_family_bytes of the proposed family *)
  mutable be_base : Score.family option;
}

type incr = {
  mc : (int * bool, bentry) Hashtbl.t array;  (* per dst: (src, is_add) *)
  mutable reach : bool array array;  (* reach.(u).(v) over the current dag *)
  mutable reach_dirty : bool;
}

let make_incr n =
  {
    mc = Array.init n (fun _ -> Hashtbl.create 16);
    reach = [||];
    reach_dirty = true;
  }

(* One reachability closure per mutation replaces one DFS per candidate
   add per iteration: Add (u, v) is acyclic iff v does not already reach
   u (matching {!Dag.creates_cycle} with u <> v). *)
let refresh_reach incr dag =
  if incr.reach_dirty then begin
    let n = Dag.n_nodes dag in
    let children = Array.make n [] in
    for v = 0 to n - 1 do
      Array.iter (fun u -> children.(u) <- v :: children.(u)) (Dag.parents dag v)
    done;
    let reach = Array.init n (fun _ -> Array.make n false) in
    for u = 0 to n - 1 do
      let row = reach.(u) in
      let rec visit v =
        List.iter
          (fun w ->
            if not row.(w) then begin
              row.(w) <- true;
              visit w
            end)
          children.(v)
      in
      visit u
    done;
    incr.reach <- reach;
    incr.reach_dirty <- false
  end

let incr_evaluate cfg cache data st incr move =
  let v = move_dst move in
  let old_f = st.families.(v) in
  let key = match move with Add (u, _) -> (u, true) | Remove (u, _) -> (u, false) in
  let e =
    match Hashtbl.find_opt incr.mc.(v) key with
    | Some e -> e
    | None ->
      let old_parents = Dag.parents st.dag v in
      let proposed =
        match move with
        | Add (u, _) -> with_parent old_parents u
        | Remove (u, _) -> without_parent old_parents u
      in
      let e =
        {
          be_proposed = proposed;
          be_dense = table_family_bytes data ~child:v ~parents:proposed;
          be_base = None;
        }
      in
      Hashtbl.add incr.mc.(v) key e;
      e
  in
  let headroom_bytes =
    cfg.budget_bytes - st.size + old_f.Score.bytes
    - Bytesize.values (Array.length e.be_proposed)
  in
  let max_params = headroom_bytes / Bytesize.per_param in
  if max_params < 1 then None
  else if
    cfg.kind = Cpd.Tables
    && st.size - old_f.Score.bytes + e.be_dense > cfg.budget_bytes
  then None
  else begin
    let new_f =
      match e.be_base with
      | Some base when cfg.kind = Cpd.Tables || base.Score.params <= max_params -> base
      | Some _ -> Score.family_capped cache ~child:v ~parents:e.be_proposed ~cap:max_params
      | None ->
        let base = Score.family cache ~child:v ~parents:e.be_proposed in
        e.be_base <- Some base;
        if cfg.kind = Cpd.Trees && base.Score.params > max_params then
          Score.family_capped cache ~child:v ~parents:e.be_proposed ~cap:max_params
        else base
    in
    let dbytes = new_f.Score.bytes - old_f.Score.bytes in
    if st.size + dbytes > cfg.budget_bytes then None
    else
      Some
        ( new_f,
          new_f.Score.loglik -. old_f.Score.loglik,
          dbytes,
          new_f.Score.params - old_f.Score.params )
  end

(* ---- search driver ----------------------------------------------------- *)

(* One interface for both climbers: the naive scorer re-enumerates and
   re-evaluates everything (the reference trajectory oracle), the
   incremental one answers from its caches. *)
type scorer = {
  sc_score : unit -> (move * (Score.family * float * int * int) option) list;
  sc_accept : move -> Score.family -> int -> unit;
  sc_restore : unit -> unit;  (* run after a snapshot restore *)
}

let naive_scorer cfg cache data st =
  {
    sc_score =
      (fun () ->
        List.map
          (fun move -> (move, evaluate cfg cache data st move))
          (candidate_moves cfg st.dag));
    sc_accept = accept st;
    sc_restore = ignore;
  }

let incr_scorer cfg cache data st =
  let incr = make_incr (Dag.n_nodes st.dag) in
  {
    sc_score =
      (fun () ->
        refresh_reach incr st.dag;
        List.map
          (fun move -> (move, incr_evaluate cfg cache data st incr move))
          (candidate_moves_with cfg st.dag ~add_legal:(fun u v ->
               not incr.reach.(v).(u))));
    sc_accept =
      (fun move new_f dbytes ->
        accept st move new_f dbytes;
        Hashtbl.reset incr.mc.(move_dst move);
        incr.reach_dirty <- true);
    sc_restore =
      (fun () ->
        Array.iter Hashtbl.reset incr.mc;
        incr.reach_dirty <- true);
  }

let climb cfg sc ~mdl_penalty trail =
  let moves_taken = ref 0 in
  let continue = ref true in
  while !continue do
    let best = ref None in
    List.iter
      (fun (move, evaluation) ->
        match evaluation with
        | None -> ()
        | Some (new_f, dscore, dbytes, dparams) ->
          let value = criterion cfg ~mdl_penalty (dscore, dbytes, dparams) in
          (* Tie-break deterministically by preferring score, then space. *)
          if value > eps then begin
            match !best with
            | Some (v0, ds0, _, _, _) when v0 > value || (v0 = value && ds0 >= dscore) -> ()
            | _ -> best := Some (value, dscore, dbytes, new_f, move)
          end)
      (sc.sc_score ());
    match !best with
    | None -> continue := false
    | Some (value, dscore, dbytes, new_f, move) ->
      Log.debug (fun m ->
          m "accept %s: dscore=%.1f dbytes=%d value=%.3f" (describe_move move) dscore
            dbytes value);
      sc.sc_accept move new_f dbytes;
      trail := describe_move move :: !trail;
      incr moves_taken
  done;
  !moves_taken

let random_walk cfg sc rng trail =
  for _ = 1 to cfg.random_walk_length do
    let feasible =
      List.filter_map
        (fun (move, evaluation) ->
          match evaluation with
          | Some (new_f, _, dbytes, _) -> Some (move, new_f, dbytes)
          | None -> None)
        (sc.sc_score ())
    in
    if feasible <> [] then begin
      let move, new_f, dbytes = List.nth feasible (Rng.int rng (List.length feasible)) in
      sc.sc_accept move new_f dbytes;
      trail := describe_move move :: !trail
    end
  done

let state_loglik st =
  Array.fold_left (fun acc f -> acc +. f.Score.loglik) 0.0 st.families

let snapshot st = (st.dag, Array.copy st.families, st.size)

let restore st (dag, families, size) =
  st.dag <- dag;
  Array.blit families 0 st.families 0 (Array.length families);
  st.size <- size

let learn_with ~make_scorer ~counts ~config:cfg data =
  let n = Data.n_vars data in
  let cache = Score.create_cache ~kind:cfg.kind ?counts data in
  let mdl_penalty = Score.mdl_penalty_per_param data in
  let families = Array.init n (fun v -> Score.family cache ~child:v ~parents:[||]) in
  let base_size =
    Array.fold_left (fun acc f -> acc + f.Score.bytes) (Bytesize.values n) families
  in
  if base_size > cfg.budget_bytes then
    invalid_arg
      (Printf.sprintf
         "Learn.learn: budget %dB cannot hold even the empty model (%dB of marginals)"
         cfg.budget_bytes base_size);
  let st = { dag = Dag.empty n; families; size = base_size } in
  let sc = make_scorer cfg cache data st in
  let rng = Rng.create cfg.seed in
  let trail = ref [] in
  let iterations = ref (climb cfg sc ~mdl_penalty trail) in
  let best = ref (snapshot st, state_loglik st) in
  for _ = 1 to cfg.random_restarts do
    random_walk cfg sc rng trail;
    iterations := !iterations + climb cfg sc ~mdl_penalty trail;
    let ll = state_loglik st in
    if ll > snd !best then best := (snapshot st, ll)
  done;
  restore st (fst !best);
  sc.sc_restore ();
  Log.info (fun m ->
      m "learned BN: %d vars, %d edges, %dB of %dB budget, loglik %.1f bits, %d family fits"
        n (Dag.n_edges st.dag) st.size cfg.budget_bytes (snd !best)
        (Score.n_evaluations cache));
  let cpds = Array.map (fun f -> f.Score.cpd) st.families in
  let bn = Bn.of_cpds ~names:data.Data.names ~cards:data.Data.cards ~dag:st.dag cpds in
  {
    bn;
    loglik = snd !best;
    bytes = st.size;
    iterations = !iterations;
    family_evaluations = Score.n_evaluations cache;
    trajectory = List.rev !trail;
  }

let learn ~config db =
  learn_with ~make_scorer:incr_scorer
    ~counts:(Some (Selest_prob.Counts.create (), 0))
    ~config db

let learn_reference ~config db = learn_with ~make_scorer:naive_scorer ~counts:None ~config db

let learn_bn ?(budget_bytes = 8192) ?(kind = Cpd.Trees) ?(rule = Ssn) ?(seed = 0) data =
  let cfg = { (default_config ~budget_bytes) with kind; rule; seed } in
  (learn ~config:cfg data).bn
