(** Greedy structure search under a storage budget (Sec. 4.3).

    Hill-climbing over edge additions and deletions, with three move-
    selection rules from Sec. 4.3.3:
    {ul
    {- [Naive] — largest raw likelihood improvement;}
    {- [Ssn] — storage-size-normalized: largest improvement per byte of
       model growth (the knapsack heuristic);}
    {- [Mdl] — improvement net of a description-length charge per added
       parameter.}}

    Every candidate structure must fit in [budget_bytes]; local maxima are
    escaped with bounded random walks (deterministic in [seed]), keeping
    the best structure seen. *)

type rule = Naive | Ssn | Mdl

type config = {
  kind : Cpd.kind;  (** table or tree CPDs *)
  budget_bytes : int;  (** hard cap on model storage *)
  max_parents : int;  (** bound on parent-set size (Sec. 4.3.2) *)
  rule : rule;
  random_restarts : int;  (** random-walk + re-climb rounds after convergence *)
  random_walk_length : int;  (** feasible random moves per walk *)
  seed : int;
}

val default_config : budget_bytes:int -> config
(** Trees, SSN, [max_parents = 4], 2 restarts of length 3, seed 0. *)

type result = {
  bn : Bn.t;
  loglik : float;  (** training log-likelihood, bits *)
  bytes : int;  (** achieved model storage *)
  iterations : int;  (** accepted moves, including random-walk moves *)
  family_evaluations : int;  (** distinct families fitted (cache misses) *)
  trajectory : string list;
      (** every accepted move in order (climb and random-walk alike), as
          compact labels — compared verbatim between {!learn} and
          {!learn_reference} *)
}

val learn : config:config -> Data.t -> result
(** The incremental climber: candidate evaluations persist in a per-node
    delta move cache across iterations (an accepted move invalidates its
    destination's entries only), and acyclicity of candidate adds is
    answered from one reachability closure per mutation instead of one
    DFS per candidate.  Trajectory- and model-identical to
    {!learn_reference}, including [family_evaluations]. *)

val learn_reference : config:config -> Data.t -> result
(** The naive climber retained as a trajectory oracle: re-enumerates and
    re-evaluates every candidate move on every iteration.  Used by tests
    and the bench to certify the incremental path move-for-move. *)

val learn_bn : ?budget_bytes:int -> ?kind:Cpd.kind -> ?rule:rule -> ?seed:int ->
  Data.t -> Bn.t
(** Convenience wrapper with library defaults (8KB budget). *)
