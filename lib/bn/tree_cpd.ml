open Selest_util
open Selest_prob

type node =
  | Leaf of { dist : float array; weight : float }
  | Split of { pindex : int; arms : arms }

and arms =
  | Multi of node array
  | Thresh of int * node * node

type t = {
  child_card : int;
  parents : int array;
  parent_cards : int array;
  parent_ordinal : bool array;
  root : node;
  n_leaves : int;
  n_splits : int;
  fitted_weight : float;
}

(* ---- fitting ----------------------------------------------------------- *)

type split_desc =
  | D_multi of int  (* pindex *)
  | D_thresh of int * int  (* pindex, cut *)

type 'l mnode = { mutable content : 'l mcontent }

and 'l mcontent =
  | M_leaf of 'l
  | M_split of int * 'l marms

and 'l marms = M_multi of 'l mnode array | M_thresh of int * 'l mnode * 'l mnode

(* Σ c·log2 c over the child counts of a row set: the only statistic split
   gains need (gain in bits = Σ_branches clogc(b) - m_b log m_b, minus the
   same for the unsplit leaf). *)
let leaf_stats data ~child rows =
  let card = data.Data.cards.(child) in
  let counts = Array.make card 0.0 in
  let col = data.Data.cols.(child) in
  Array.iter (fun r -> counts.(col.(r)) <- counts.(col.(r)) +. Data.weight data r) rows;
  Counts.record_scan ();
  counts

let loglik_of_counts counts =
  let m = Arrayx.sum counts in
  if m <= 0.0 then 0.0
  else Array.fold_left (fun acc c -> acc +. Arrayx.xlogx c) 0.0 counts -. Arrayx.xlogx m

(* A fit works off one abstract leaf representation plus four statistics
   queries.  The row-backed ops scan the leaf's row set directly — one
   column pass per query, the reference cost model.  [fit_counted]'s ops
   instead aggregate cached group-by counts from a {!Counts} kernel and
   never revisit rows after the kernel's single scan per attribute set.
   On unweighted data every count either way is a sum of 1.0s — an exact
   small-integer float whatever the accumulation order — so both routes
   produce bitwise-identical count arrays and hence identical split
   decisions, leaf distributions, and parameter tallies. *)
type 'l leaf_ops = {
  lo_child_counts : 'l -> float array;
  lo_pair_counts : 'l -> int -> float array;
      (* [lo_pair_counts leaf pi]: counts.(pval * child_card + cval) *)
  lo_branch_multi : 'l -> int -> 'l array;
  lo_branch_thresh : 'l -> int -> int -> 'l * 'l;
}

(* Best split of one leaf: returns (gain_bits, delta_params, descriptor). *)
let best_split_with ops ~child_card ~parent_cards ~parent_ordinal leaf =
  let base = loglik_of_counts (ops.lo_child_counts leaf) in
  let best = ref None in
  let consider gain dparams desc =
    if gain > 0.0 then
      match !best with
      | Some (g, dp, _) when gain /. float_of_int dparams <= g /. float_of_int dp -> ()
      | _ -> best := Some (gain, dparams, desc)
  in
  Array.iteri
    (fun pi pcard ->
      if pcard > 1 then begin
        let counts = ops.lo_pair_counts leaf pi in
        (* Multiway: one branch per parent value. *)
        let multi_ll = ref 0.0 in
        let n_nonempty = ref 0 in
        for v = 0 to pcard - 1 do
          let branch = Array.sub counts (v * child_card) child_card in
          let m = Arrayx.sum branch in
          if m > 0.0 then incr n_nonempty;
          multi_ll := !multi_ll +. loglik_of_counts branch
        done;
        if !n_nonempty > 1 then
          consider (!multi_ll -. base)
            (((pcard - 1) * (child_card - 1)) + 2)
            (D_multi pi);
        (* Threshold cuts for ordinal parents: one extra leaf per split. *)
        if parent_ordinal.(pi) then begin
          let lo = Array.make child_card 0.0 in
          let hi = Array.make child_card 0.0 in
          for v = 0 to pcard - 1 do
            for c = 0 to child_card - 1 do
              hi.(c) <- hi.(c) +. counts.((v * child_card) + c)
            done
          done;
          for cut = 1 to pcard - 1 do
            (* move value (cut-1) from hi to lo *)
            for c = 0 to child_card - 1 do
              let w = counts.(((cut - 1) * child_card) + c) in
              lo.(c) <- lo.(c) +. w;
              hi.(c) <- hi.(c) -. w
            done;
            if Arrayx.sum lo > 0.0 && Arrayx.sum hi > 0.0 then
              consider
                (loglik_of_counts lo +. loglik_of_counts hi -. base)
                (child_card - 1 + 2)
                (D_thresh (pi, cut))
          done
        end
      end)
    parent_cards;
  !best

let partition_rows data ~pvar rows ~branches ~branch_of =
  let groups = Array.make branches [] in
  let pcol = data.Data.cols.(pvar) in
  (* Build in reverse then rev to keep original row order. *)
  Array.iter (fun r -> groups.(branch_of pcol.(r)) <- r :: groups.(branch_of pcol.(r))) rows;
  Counts.record_scan ();
  Array.map (fun l -> Array.of_list (List.rev l)) groups

let fit_with ops ~child_card ~parents ~parent_cards ~parent_ordinal ~total_weight
    ?param_budget ?gain_threshold root_leaf =
  let gain_threshold =
    match gain_threshold with
    | Some g -> g
    | None -> Arrayx.log2 (Float.max 2.0 total_weight) /. 2.0
  in
  let budget = match param_budget with Some b -> b | None -> max_int in
  let root = { content = M_leaf root_leaf } in
  let params = ref (child_card - 1) in
  let n_leaves = ref 1 and n_splits = ref 0 in
  (* Frontier of splittable leaves with their precomputed best candidate. *)
  let frontier = ref [] in
  let push mn leaf =
    match best_split_with ops ~child_card ~parent_cards ~parent_ordinal leaf with
    | Some cand -> frontier := (mn, leaf, cand) :: !frontier
    | None -> ()
  in
  push root root_leaf;
  let continue = ref true in
  while !continue do
    (* Best ratio candidate that fits the budget and clears the gain floor. *)
    let pick =
      List.fold_left
        (fun acc ((_, _, (gain, dp, _)) as item) ->
          if
            gain >= gain_threshold *. float_of_int dp
            && !params + dp <= budget
          then
            match acc with
            | Some (_, _, (g0, dp0, _))
              when g0 /. float_of_int dp0 >= gain /. float_of_int dp ->
              acc
            | _ -> Some item
          else acc)
        None !frontier
    in
    match pick with
    | None -> continue := false
    | Some (mn, leaf, (_, dp, desc)) ->
      frontier := List.filter (fun (m, _, _) -> m != mn) !frontier;
      (match desc with
      | D_multi pi ->
        let groups = ops.lo_branch_multi leaf pi in
        let kids = Array.map (fun g -> { content = M_leaf g }) groups in
        mn.content <- M_split (pi, M_multi kids);
        Array.iteri (fun i kid -> push kid groups.(i)) kids;
        n_leaves := !n_leaves + parent_cards.(pi) - 1;
        incr n_splits
      | D_thresh (pi, cut) ->
        let glo, ghi = ops.lo_branch_thresh leaf pi cut in
        let lo = { content = M_leaf glo } and hi = { content = M_leaf ghi } in
        mn.content <- M_split (pi, M_thresh (cut, lo, hi));
        push lo glo;
        push hi ghi;
        n_leaves := !n_leaves + 1;
        incr n_splits);
      params := !params + dp
  done;
  (* Freeze: leaves get maximum-likelihood distributions. *)
  let rec freeze mn =
    match mn.content with
    | M_leaf leaf ->
      let counts = ops.lo_child_counts leaf in
      Leaf { dist = Arrayx.normalize counts; weight = Arrayx.sum counts }
    | M_split (pi, M_multi kids) ->
      Split { pindex = pi; arms = Multi (Array.map freeze kids) }
    | M_split (pi, M_thresh (cut, lo, hi)) ->
      Split { pindex = pi; arms = Thresh (cut, freeze lo, freeze hi) }
  in
  {
    child_card;
    parents;
    parent_cards;
    parent_ordinal;
    root = freeze root;
    n_leaves = !n_leaves;
    n_splits = !n_splits;
    fitted_weight = total_weight;
  }

let check_increasing parents =
  for i = 1 to Array.length parents - 1 do
    if parents.(i - 1) >= parents.(i) then
      invalid_arg "Tree_cpd.fit: parents must be strictly increasing"
  done

(* Row-backed statistics: a leaf is its row-index set. *)
let row_ops data ~child ~parents =
  let child_card = data.Data.cards.(child) in
  let child_col = data.Data.cols.(child) in
  {
    lo_child_counts = (fun rows -> leaf_stats data ~child rows);
    lo_pair_counts =
      (fun rows pi ->
        let pcard = data.Data.cards.(parents.(pi)) in
        let pcol = data.Data.cols.(parents.(pi)) in
        (* counts.(pval * child_card + cval) *)
        let counts = Array.make (pcard * child_card) 0.0 in
        Array.iter
          (fun r ->
            let idx = (pcol.(r) * child_card) + child_col.(r) in
            counts.(idx) <- counts.(idx) +. Data.weight data r)
          rows;
        Counts.record_scan ();
        counts);
    lo_branch_multi =
      (fun rows pi ->
        partition_rows data ~pvar:parents.(pi) rows
          ~branches:data.Data.cards.(parents.(pi)) ~branch_of:(fun v -> v));
    lo_branch_thresh =
      (fun rows pi cut ->
        let groups =
          partition_rows data ~pvar:parents.(pi) rows ~branches:2 ~branch_of:(fun v ->
              if v < cut then 0 else 1)
        in
        (groups.(0), groups.(1)));
  }

let fit data ~child ~parents ?param_budget ?gain_threshold () =
  check_increasing parents;
  let child_card = data.Data.cards.(child) in
  let parent_cards = Array.map (fun p -> data.Data.cards.(p)) parents in
  let parent_ordinal = Array.map (fun p -> data.Data.ordinal.(p)) parents in
  let all_rows = Array.init data.Data.n (fun i -> i) in
  fit_with (row_ops data ~child ~parents) ~child_card ~parents ~parent_cards
    ~parent_ordinal ~total_weight:(Data.total_weight data) ?param_budget
    ?gain_threshold all_rows

(* Count-backed statistics: a leaf is the conjunction of per-parent value
   masks its path imposes ([None] = unconstrained), and every query is an
   aggregation of one kernel group-by over (constrained parents ∪ queried
   parent, child).  The kernel scans the data once per distinct attribute
   set across the whole structure search; everything afterwards is
   arithmetic on the cached joint counts. *)
let count_ops kernel ~table data ~child ~parents ~parent_cards =
  let child_card = data.Data.cards.(child) in
  let n_rows = data.Data.n in
  let counts_over dims =
    let cards = Array.map (fun a -> data.Data.cards.(a)) dims in
    let cols = Array.map (fun a -> data.Data.cols.(a)) dims in
    Counts.counts kernel ~table ~dims ~cards ~cols ~n_rows
  in
  (* Joint over queried parent indices [qis] (increasing) and the child,
     filtered through the leaf's masks and projected by [slot].  The child
     is the fastest-varying digit of the kernel's prefix key. *)
  let aggregate masks qis ~out_size ~slot =
    let nq = Array.length qis in
    let dims = Array.append (Array.map (fun pi -> parents.(pi)) qis) [| child |] in
    let joint = counts_over dims in
    let out = Array.make out_size 0.0 in
    let digits = Array.make nq 0 in
    Array.iteri
      (fun cfg w ->
        if w > 0.0 then begin
          let cv = cfg mod child_card in
          let rest = ref (cfg / child_card) in
          for i = nq - 1 downto 0 do
            digits.(i) <- !rest mod parent_cards.(qis.(i));
            rest := !rest / parent_cards.(qis.(i))
          done;
          let ok = ref true in
          for i = 0 to nq - 1 do
            match masks.(qis.(i)) with
            | Some m when not m.(digits.(i)) -> ok := false
            | _ -> ()
          done;
          if !ok then begin
            let s = slot digits cv in
            out.(s) <- out.(s) +. w
          end
        end)
      joint;
    out
  in
  let constrained masks =
    let out = ref [] in
    Array.iteri (fun pi m -> if m <> None then out := pi :: !out) masks;
    Array.of_list (List.rev !out)
  in
  {
    lo_child_counts =
      (fun masks ->
        aggregate masks (constrained masks) ~out_size:child_card
          ~slot:(fun _ cv -> cv));
    lo_pair_counts =
      (fun masks pi ->
        let cons = constrained masks in
        let qis =
          if Array.exists (fun q -> q = pi) cons then cons
          else begin
            let merged = Array.append cons [| pi |] in
            Array.sort compare merged;
            merged
          end
        in
        let pos = ref 0 in
        Array.iteri (fun i q -> if q = pi then pos := i) qis;
        let pos = !pos in
        aggregate masks qis ~out_size:(parent_cards.(pi) * child_card)
          ~slot:(fun digits cv -> (digits.(pos) * child_card) + cv));
    lo_branch_multi =
      (fun masks pi ->
        let pcard = parent_cards.(pi) in
        Array.init pcard (fun v ->
            let keep = match masks.(pi) with Some m -> m.(v) | None -> true in
            let m = Array.make pcard false in
            m.(v) <- keep;
            let leaf = Array.copy masks in
            leaf.(pi) <- Some m;
            leaf));
    lo_branch_thresh =
      (fun masks pi cut ->
        let pcard = parent_cards.(pi) in
        let allow v = match masks.(pi) with Some m -> m.(v) | None -> true in
        let lo = Array.copy masks and hi = Array.copy masks in
        lo.(pi) <- Some (Array.init pcard (fun v -> v < cut && allow v));
        hi.(pi) <- Some (Array.init pcard (fun v -> v >= cut && allow v));
        (lo, hi));
  }

let fit_counted kernel ~table data ~child ~parents ?param_budget ?gain_threshold () =
  if data.Data.weights <> None then
    invalid_arg "Tree_cpd.fit_counted: weighted data is not supported";
  check_increasing parents;
  let child_card = data.Data.cards.(child) in
  let parent_cards = Array.map (fun p -> data.Data.cards.(p)) parents in
  let parent_ordinal = Array.map (fun p -> data.Data.ordinal.(p)) parents in
  let root_leaf = Array.make (Array.length parents) None in
  fit_with (count_ops kernel ~table data ~child ~parents ~parent_cards)
    ~child_card ~parents ~parent_cards ~parent_ordinal
    ~total_weight:(Data.total_weight data) ?param_budget ?gain_threshold root_leaf

let refit t data ~child =
  (* Keep the split structure, refresh every leaf's distribution from the
     rows that reach it — the parameter-only update of incremental
     maintenance. *)
  if data.Data.cards.(child) <> t.child_card then
    invalid_arg "Tree_cpd.refit: child arity mismatch";
  Array.iteri
    (fun i p ->
      if data.Data.cards.(p) <> t.parent_cards.(i) then
        invalid_arg "Tree_cpd.refit: parent arity mismatch")
    t.parents;
  let all_rows = Array.init data.Data.n (fun i -> i) in
  let rec rebuild node rows =
    match node with
    | Leaf _ ->
      let counts = leaf_stats data ~child rows in
      Leaf { dist = Arrayx.normalize counts; weight = Arrayx.sum counts }
    | Split { pindex; arms = Multi kids } ->
      let groups =
        partition_rows data ~pvar:t.parents.(pindex) rows
          ~branches:t.parent_cards.(pindex) ~branch_of:(fun v -> v)
      in
      Split { pindex; arms = Multi (Array.mapi (fun v kid -> rebuild kid groups.(v)) kids) }
    | Split { pindex; arms = Thresh (cut, lo, hi) } ->
      let groups =
        partition_rows data ~pvar:t.parents.(pindex) rows ~branches:2
          ~branch_of:(fun v -> if v < cut then 0 else 1)
      in
      Split { pindex; arms = Thresh (cut, rebuild lo groups.(0), rebuild hi groups.(1)) }
  in
  { t with root = rebuild t.root all_rows; fitted_weight = Data.total_weight data }

(* ---- explicit construction -------------------------------------------- *)

let leaf dist =
  Leaf { dist = Arrayx.normalize (Array.copy dist); weight = Arrayx.sum dist }

let of_tree ~child_card ~parents ~parent_cards ?parent_ordinal node =
  let np = Array.length parents in
  if Array.length parent_cards <> np then invalid_arg "Tree_cpd.of_tree: cards mismatch";
  let parent_ordinal =
    match parent_ordinal with Some o -> o | None -> Array.make np true
  in
  let n_leaves = ref 0 and n_splits = ref 0 in
  let rec check = function
    | Leaf { dist; _ } ->
      if Array.length dist <> child_card then invalid_arg "Tree_cpd.of_tree: leaf arity";
      incr n_leaves
    | Split { pindex; arms } ->
      if pindex < 0 || pindex >= np then invalid_arg "Tree_cpd.of_tree: bad pindex";
      incr n_splits;
      (match arms with
      | Multi kids ->
        if Array.length kids <> parent_cards.(pindex) then
          invalid_arg "Tree_cpd.of_tree: multiway arity";
        Array.iter check kids
      | Thresh (cut, lo, hi) ->
        if cut <= 0 || cut >= parent_cards.(pindex) then
          invalid_arg "Tree_cpd.of_tree: bad cut";
        check lo;
        check hi)
  in
  check node;
  {
    child_card;
    parents;
    parent_cards;
    parent_ordinal;
    root = node;
    n_leaves = !n_leaves;
    n_splits = !n_splits;
    fitted_weight = 0.0;
  }

(* ---- use --------------------------------------------------------------- *)

let rec walk node pvals =
  match node with
  | Leaf { dist; _ } -> dist
  | Split { pindex; arms = Multi kids } -> walk kids.(pvals.(pindex)) pvals
  | Split { pindex; arms = Thresh (cut, lo, hi) } ->
    walk (if pvals.(pindex) < cut then lo else hi) pvals

let dist t pvals =
  if Array.length pvals <> Array.length t.parents then
    invalid_arg "Tree_cpd.dist: wrong number of parent values";
  Array.iteri
    (fun i v ->
      if v < 0 || v >= t.parent_cards.(i) then
        invalid_arg "Tree_cpd.dist: parent value out of range")
    pvals;
  walk t.root pvals

let n_params t = (t.n_leaves * (t.child_card - 1)) + (2 * t.n_splits)
let n_parents t = Array.length t.parents

let used_parents t =
  let used = Array.make (Array.length t.parents) false in
  let rec go = function
    | Leaf _ -> ()
    | Split { pindex; arms } ->
      used.(pindex) <- true;
      (match arms with
      | Multi kids -> Array.iter go kids
      | Thresh (_, lo, hi) ->
        go lo;
        go hi)
  in
  go t.root;
  let out = ref [] in
  Array.iteri (fun i u -> if u then out := t.parents.(i) :: !out) used;
  Array.of_list (List.rev !out)

let loglik t data ~child =
  let child_col = data.Data.cols.(child) in
  let parent_cols = Array.map (fun p -> data.Data.cols.(p)) t.parents in
  let pvals = Array.make (Array.length t.parents) 0 in
  let acc = ref 0.0 in
  for r = 0 to data.Data.n - 1 do
    Array.iteri (fun i col -> pvals.(i) <- col.(r)) parent_cols;
    let d = walk t.root pvals in
    acc := !acc +. (Data.weight data r *. Arrayx.log2 (Float.max d.(child_col.(r)) 1e-300))
  done;
  Counts.record_scan ();
  !acc

let loglik_tabulated t data ~child =
  (* Same per-row sum as [loglik], with each leaf's log2 values computed
     once up front instead of once per row.  log2 on an identical input is
     deterministic in-process, and the row-order accumulation is unchanged,
     so the result is bitwise equal to [loglik]'s. *)
  let rec tab = function
    | Leaf { dist; weight } ->
      Leaf
        { dist = Array.map (fun p -> Arrayx.log2 (Float.max p 1e-300)) dist; weight }
    | Split { pindex; arms = Multi kids } ->
      Split { pindex; arms = Multi (Array.map tab kids) }
    | Split { pindex; arms = Thresh (cut, lo, hi) } ->
      Split { pindex; arms = Thresh (cut, tab lo, tab hi) }
  in
  let lroot = tab t.root in
  let child_col = data.Data.cols.(child) in
  let parent_cols = Array.map (fun p -> data.Data.cols.(p)) t.parents in
  let pvals = Array.make (Array.length t.parents) 0 in
  let acc = ref 0.0 in
  for r = 0 to data.Data.n - 1 do
    Array.iteri (fun i col -> pvals.(i) <- col.(r)) parent_cols;
    let d = walk lroot pvals in
    acc := !acc +. (Data.weight data r *. d.(child_col.(r)))
  done;
  Counts.record_scan ();
  !acc

let to_factor ~var_of ~child t =
  let scope =
    Array.append [| (var_of child, (-1)) |]
      (Array.mapi (fun i p -> (var_of p, i)) t.parents)
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) scope;
  let vars = Array.map fst scope in
  for i = 1 to Array.length vars - 1 do
    if vars.(i - 1) = vars.(i) then invalid_arg "Tree_cpd.to_factor: var_of not injective"
  done;
  let cards =
    Array.map
      (fun (_, role) -> if role = -1 then t.child_card else t.parent_cards.(role))
      scope
  in
  let pvals = Array.make (Array.length t.parents) 0 in
  Factor.of_fun ~vars ~cards (fun asg ->
      let child_val = ref 0 in
      Array.iteri
        (fun i (_, role) ->
          if role = -1 then child_val := asg.(i) else pvals.(role) <- asg.(i))
        scope;
      (walk t.root pvals).(!child_val))

let depth t =
  let rec go = function
    | Leaf _ -> 0
    | Split { arms = Multi kids; _ } ->
      1 + Array.fold_left (fun acc k -> max acc (go k)) 0 kids
    | Split { arms = Thresh (_, lo, hi); _ } -> 1 + max (go lo) (go hi)
  in
  go t.root

let pp ~names ppf t =
  let rec go indent node =
    match node with
    | Leaf { dist; weight } ->
      Format.fprintf ppf "%sleaf (w=%.0f) %a@." indent weight Dist.pp
        (Dist.of_weights (Array.copy dist))
    | Split { pindex; arms = Multi kids } ->
      Format.fprintf ppf "%ssplit %s:@." indent (names t.parents.(pindex));
      Array.iteri
        (fun v kid ->
          Format.fprintf ppf "%s =%d:@." indent v;
          go (indent ^ "  ") kid)
        kids
    | Split { pindex; arms = Thresh (cut, lo, hi) } ->
      Format.fprintf ppf "%ssplit %s < %d:@." indent (names t.parents.(pindex)) cut;
      go (indent ^ "  ") lo;
      Format.fprintf ppf "%s >= %d:@." indent cut;
      go (indent ^ "  ") hi
  in
  go "" t.root
