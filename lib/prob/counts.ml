(* Count-once group-by kernel: cached key columns and group-by counts per
   (table, attr-set), built by prefix extension.  See counts.mli. *)

type key_entry = { e_key : int array; e_configs : int }

type t = {
  keys_tbl : (int * int list, key_entry) Hashtbl.t;
  counts_tbl : (int * int list, float array) Hashtbl.t;
  mutex : Mutex.t;
  max_bytes : int;
  mutable used_bytes : int;
}

let global_scans = Atomic.make 0
let record_scan () = Atomic.incr global_scans
let total_scans () = Atomic.get global_scans
let reset_total_scans () = Atomic.set global_scans 0

let create ?(max_bytes = 64 * 1024 * 1024) () =
  {
    keys_tbl = Hashtbl.create 64;
    counts_tbl = Hashtbl.create 64;
    mutex = Mutex.create ();
    max_bytes;
    used_bytes = 0;
  }

let find tbl mutex k =
  Mutex.lock mutex;
  let r = Hashtbl.find_opt tbl k in
  Mutex.unlock mutex;
  r

(* First publication wins; the budget admits an entry only while there is
   headroom, so a kernel's footprint is bounded no matter how many
   attribute sets the search visits. *)
let publish t tbl k v ~bytes =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt tbl k with
    | Some existing -> existing
    | None ->
      if t.used_bytes + bytes <= t.max_bytes then begin
        t.used_bytes <- t.used_bytes + bytes;
        Hashtbl.add tbl k v
      end;
      v
  in
  Mutex.unlock t.mutex;
  r

let rec keys_prefix t ~table ~dims ~cards ~cols ~n_rows j =
  (* Key column over dims.(0 .. j-1). *)
  let id = (table, Array.to_list (Array.sub dims 0 j)) in
  match find t.keys_tbl t.mutex id with
  | Some e -> e
  | None ->
    let e =
      if j = 0 then { e_key = Array.make n_rows 0; e_configs = 1 }
      else begin
        let prev = keys_prefix t ~table ~dims ~cards ~cols ~n_rows (j - 1) in
        let configs = Contingency.joint_size (Array.sub cards 0 j) in
        let c = cards.(j - 1) and col = cols.(j - 1) in
        let pk = prev.e_key in
        let key = Array.make n_rows 0 in
        for r = 0 to n_rows - 1 do
          key.(r) <- (pk.(r) * c) + col.(r)
        done;
        record_scan ();
        { e_key = key; e_configs = configs }
      end
    in
    publish t t.keys_tbl id e ~bytes:(8 * n_rows)

let keys t ~table ~dims ~cards ~cols ~n_rows =
  if Array.length dims <> Array.length cards || Array.length dims <> Array.length cols
  then invalid_arg "Counts.keys: dims/cards/cols lengths differ";
  let e = keys_prefix t ~table ~dims ~cards ~cols ~n_rows (Array.length dims) in
  (e.e_key, e.e_configs)

let counts t ~table ~dims ~cards ~cols ~n_rows =
  let id = (table, Array.to_list dims) in
  match find t.counts_tbl t.mutex id with
  | Some c -> c
  | None ->
    let key, configs = keys t ~table ~dims ~cards ~cols ~n_rows in
    let c = Array.make configs 0.0 in
    for r = 0 to n_rows - 1 do
      c.(key.(r)) <- c.(key.(r)) +. 1.0
    done;
    record_scan ();
    publish t t.counts_tbl id c ~bytes:(8 * configs)
