(** Joint value counting (the "count and group-by query" of Sec. 4.2).

    A contingency table records, for a set of discrete columns, how many
    rows take each combination of values.  All sufficient statistics for
    parameter estimation and all exact ground-truth query sizes in the
    experiment harness are obtained through this module. *)

type t

val joint_size : int array -> int
(** Product of the cardinalities.  Raises [Invalid_argument] on a
    non-positive cardinality or when the product overflows — the single
    overflow guard every joint-index computation must go through. *)

val encoder : int array -> int array -> int
(** [encoder cards] validates the cardinalities (via {!joint_size}) once
    and returns the row-major joint-index encoder (last value fastest).
    The closure range-checks each value.  Partial-apply it outside loops:
    this is the checked way to build joint configuration indices outside
    this module (e.g. {!Selest_prm.Suffstats}). *)

val count : cards:int array -> int array array -> t
(** [count ~cards cols] scans parallel columns [cols] (all of equal length)
    whose [i]-th column ranges over [0..cards.(i)-1].  Chooses a dense or
    hashed representation based on the joint domain size. *)

val count_weighted : cards:int array -> weights:float array -> int array array -> t
(** Same, adding [weights.(r)] instead of 1 for row [r] (used for counting
    over implicit join results). *)

val count_masked : cards:int array -> mask:bool array -> int array array -> t
(** Count only rows [r] with [mask.(r)]. *)

val cards : t -> int array
val total : t -> float

val get : t -> int array -> float
(** Count for one joint value combination. *)

val iter : t -> (int array -> float -> unit) -> unit
(** Iterate over non-zero cells.  The key array is reused — copy to keep. *)

val to_factor : vars:int array -> t -> Factor.t
(** View the counts as a (dense) factor over the given variable ids, which
    must be strictly increasing and in the same order as the counted
    columns. *)

val marginal : t -> int array -> t
(** [marginal t dims] keeps only the listed column positions (strictly
    increasing), summing over the rest. *)

val n_nonzero : t -> int
