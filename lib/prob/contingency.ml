open Selest_util

(* Cells are keyed by the row-major joint index (last column fastest).
   OCaml's 63-bit ints accommodate any joint domain we can meet in practice;
   [check_encodable] guards against overflow on pathological schemas. *)
type repr =
  | Dense of float array
  | Sparse of (int, float) Hashtbl.t

type t = { cards : int array; repr : repr; mutable total : float }

let dense_limit = 1 lsl 22

let joint_size cards =
  let s =
    Array.fold_left
      (fun acc c ->
        if c <= 0 then invalid_arg "Contingency: card <= 0";
        if acc > max_int / c then invalid_arg "Contingency: joint domain too large";
        acc * c)
      1 cards
  in
  s

let make cards =
  let size = joint_size cards in
  let repr =
    if size <= dense_limit then Dense (Array.make size 0.0)
    else Sparse (Hashtbl.create 1024)
  in
  { cards; repr; total = 0.0 }

(* Row-major joint index of a value tuple, with per-value range checks.
   Overflow-safe only after [joint_size cards] has been validated — use
   {!encoder} (or go through [make]) rather than calling this on
   unvalidated cardinalities. *)
let encode_values cards values =
  let idx = ref 0 in
  for i = 0 to Array.length cards - 1 do
    let v = values.(i) in
    if v < 0 || v >= cards.(i) then invalid_arg "Contingency: value out of range";
    idx := (!idx * cards.(i)) + v
  done;
  !idx

(* The single checked encoder: the overflow guard runs once at partial
   application, the closure then only range-checks values. *)
let encoder cards =
  ignore (joint_size cards);
  fun values -> encode_values cards values

(* Column-oriented variant for the counting loops; [make] has already run
   [joint_size] on these cards. *)
let encode cards cols r =
  let idx = ref 0 in
  for i = 0 to Array.length cards - 1 do
    let v = cols.(i).(r) in
    if v < 0 || v >= cards.(i) then invalid_arg "Contingency: value out of range";
    idx := (!idx * cards.(i)) + v
  done;
  !idx

let add t key w =
  t.total <- t.total +. w;
  match t.repr with
  | Dense a -> a.(key) <- a.(key) +. w
  | Sparse h ->
    let cur = try Hashtbl.find h key with Not_found -> 0.0 in
    Hashtbl.replace h key (cur +. w)

let check_cols cards cols =
  if Array.length cards <> Array.length cols then
    invalid_arg "Contingency: cards/cols length mismatch";
  if Array.length cols > 0 then begin
    let n = Array.length cols.(0) in
    Array.iter
      (fun c -> if Array.length c <> n then invalid_arg "Contingency: ragged columns")
      cols;
    n
  end
  else 0

let count ~cards cols =
  let n = check_cols cards cols in
  let t = make cards in
  if Array.length cards = 0 then begin
    t.total <- float_of_int n;
    (match t.repr with Dense a -> a.(0) <- float_of_int n | Sparse _ -> ());
    t
  end
  else begin
    for r = 0 to n - 1 do
      add t (encode cards cols r) 1.0
    done;
    t
  end

let count_weighted ~cards ~weights cols =
  let n = check_cols cards cols in
  if Array.length weights <> n then invalid_arg "Contingency: weights length";
  let t = make cards in
  for r = 0 to n - 1 do
    let key = if Array.length cards = 0 then 0 else encode cards cols r in
    add t key weights.(r)
  done;
  t

let count_masked ~cards ~mask cols =
  let n = check_cols cards cols in
  if Array.length mask <> n then invalid_arg "Contingency: mask length";
  let t = make cards in
  for r = 0 to n - 1 do
    if mask.(r) then
      let key = if Array.length cards = 0 then 0 else encode cards cols r in
      add t key 1.0
  done;
  t

let cards t = Array.copy t.cards
let total t = t.total

let key_of_values = encode_values

let get t values =
  if Array.length values <> Array.length t.cards then
    invalid_arg "Contingency.get: arity mismatch";
  let key = key_of_values t.cards values in
  match t.repr with
  | Dense a -> a.(key)
  | Sparse h -> ( try Hashtbl.find h key with Not_found -> 0.0)

let decode cards key out =
  let rem = ref key in
  for i = Array.length cards - 1 downto 0 do
    out.(i) <- !rem mod cards.(i);
    rem := !rem / cards.(i)
  done

let iter t f =
  let buf = Array.make (Array.length t.cards) 0 in
  match t.repr with
  | Dense a ->
    Array.iteri
      (fun key w ->
        if w <> 0.0 then begin
          decode t.cards key buf;
          f buf w
        end)
      a
  | Sparse h ->
    Hashtbl.iter
      (fun key w ->
        if w <> 0.0 then begin
          decode t.cards key buf;
          f buf w
        end)
      h

let to_factor ~vars t =
  let size = joint_size t.cards in
  if size > dense_limit then
    invalid_arg "Contingency.to_factor: joint domain too large for a dense factor";
  let data =
    match t.repr with
    | Dense a -> Array.copy a
    | Sparse h ->
      let a = Array.make size 0.0 in
      Hashtbl.iter (fun key w -> a.(key) <- a.(key) +. w) h;
      a
  in
  (* Our row-major cell layout (last column fastest) matches Factor's. *)
  Factor.create ~vars ~cards:(Array.copy t.cards) data

let marginal t dims =
  for i = 1 to Array.length dims - 1 do
    if dims.(i - 1) >= dims.(i) then invalid_arg "Contingency.marginal: dims not increasing"
  done;
  Array.iter
    (fun d -> if d < 0 || d >= Array.length t.cards then invalid_arg "Contingency.marginal: bad dim")
    dims;
  let sub_cards = Array.map (fun d -> t.cards.(d)) dims in
  let out = make sub_cards in
  let sub = Array.make (Array.length dims) 0 in
  iter t (fun values w ->
      Array.iteri (fun i d -> sub.(i) <- values.(d)) dims;
      add out (key_of_values sub_cards sub) w);
  out

let n_nonzero t =
  match t.repr with
  | Dense a -> Arrayx.fold_lefti (fun acc _ w -> if w <> 0.0 then acc + 1 else acc) 0 a
  | Sparse h -> Hashtbl.fold (fun _ w acc -> if w <> 0.0 then acc + 1 else acc) h 0
