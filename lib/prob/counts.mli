(** Count-once group-by kernel for sufficient statistics (AD-tree-lite).

    Structure search evaluates many candidate families over the same
    columns; the raw work is always the same two primitives:

    {ul
    {- {e key columns}: the row-major joint configuration index of an
       attribute set, materialized as one [int array] per row;}
    {- {e group-by counts}: how many rows take each configuration.}}

    Both are cached per [(table, attr-set)].  Key columns are built by
    {e prefix extension}: the keys for [\[a; b; c\]] are derived from the
    cached keys for [\[a; b\]] with a single fused pass
    ([key' = key * card c + col c]), so sibling candidate families that
    share a prefix never rescan the shared columns — the paper's "count
    and group-by query" (Sec. 4.2) is paid once per attribute set instead
    of once per candidate evaluation.

    Determinism: keys are exactly the digit-by-digit configuration
    indices the naive scans compute, and counts accumulate [+. 1.0] in
    row order — bit-identical to an unshared scan, so a search driven
    through this kernel follows the same trajectory as one that is not.

    Thread safety: a kernel may be shared by parallel scoring domains.
    Lookups and publications are mutex-guarded; computation runs outside
    the lock on immutable inputs, and on a racing double-compute the
    first published entry wins.  Returned arrays are shared — callers
    must treat them as read-only. *)

type t

val create : ?max_bytes:int -> unit -> t
(** A fresh kernel.  [max_bytes] (default 64 MiB) bounds the memory held
    by cached key and count columns; once the budget is exhausted further
    results are computed on demand but not retained, so a kernel never
    grows past [max_bytes] regardless of how many attribute sets the
    search visits. *)

val keys :
  t -> table:int -> dims:int array -> cards:int array ->
  cols:int array array -> n_rows:int -> int array * int
(** [keys t ~table ~dims ~cards ~cols ~n_rows] is [(key, configs)]:
    [key.(r)] is the row-major joint index of row [r] over the columns
    [cols] (with per-column cardinalities [cards], last column fastest)
    and [configs] their joint size.  [dims] names the columns for caching
    — callers must use a stable id per [(table, column)].  Cached per
    [(table, dims)] with prefix extension.  Raises like
    {!Contingency.joint_size} on overflow. *)

val counts :
  t -> table:int -> dims:int array -> cards:int array ->
  cols:int array array -> n_rows:int -> float array
(** Group-by counts over the same key space: [counts.(k)] is the number
    of rows whose joint index is [k] (length [configs]).  Shared and
    read-only. *)

val record_scan : unit -> unit
(** Count one full-column pass performed outside the kernel (e.g. the
    positives pass of a join-statistics fit) in the global tally. *)

val total_scans : unit -> int
(** Global number of full-column passes performed by every kernel (plus
    {!record_scan} ticks) since the last {!reset_total_scans} — the
    [suffstat_scans] figure of merit for the learn bench. *)

val reset_total_scans : unit -> unit
