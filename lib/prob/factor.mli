(** Multi-dimensional potentials over discrete variables.

    A factor maps joint assignments of a set of variables (identified by
    integer ids, each with a fixed cardinality) to non-negative reals.
    Factors are the workhorse of Bayesian-network inference: CPDs are
    converted to factors, and variable elimination repeatedly multiplies
    factors and sums variables out.

    Every table-walking operation here runs on incremental stride
    ("odometer") kernels: operand and output indices are advanced digit by
    digit instead of decoded with div/mod per entry, and the fused kernels
    ({!sum_out_product}, {!marginalize_onto}) combine a whole
    multiply-then-marginalize step into one pass with a single output
    allocation.  {!Reference} keeps the naive per-entry implementations as
    a test oracle. *)

type t

type scratch
(** A checkout pool of exactly-sized tables.  A long variable-elimination
    run that routes its intermediate factors through one pool performs
    O(1) large allocations: each elimination takes its output buffer from
    the pool and releases the buffers of the factors it consumed.

    Contract: a factor built on a taken buffer aliases pool memory; it
    must be released (via {!release}) only once no live factor references
    the buffer, and never used after release. *)

val create : vars:int array -> cards:int array -> float array -> t
(** [create ~vars ~cards data]: [vars] must be strictly increasing;
    [cards.(i)] is the cardinality of [vars.(i)]; [data] is laid out
    row-major with the {e last} variable fastest and must have length
    [prod cards].  Raises [Invalid_argument] on any violation. *)

val of_fun : vars:int array -> cards:int array -> (int array -> float) -> t
(** Tabulate a function of the joint assignment (assignment array is in
    [vars] order and reused across calls — copy it if you keep it). *)

val constant : float -> t
(** Scalar factor over no variables. *)

val vars : t -> int array
val cards : t -> int array
val size : t -> int
(** Number of entries. *)

val data : t -> float array
(** The underlying table (a copy). *)

val unsafe_data : t -> float array
(** The {e live} underlying table — no copy.  The array aliases the
    factor's storage: writing to it corrupts the factor, and for factors
    built on {!scratch} buffers it aliases pool memory.  Intended for
    compiled executors ({!Selest_plan.Exec}) that read factor tables in
    place to avoid per-request allocation. *)

val strides_of : t -> int array
(** Row-major strides of the factor's table, last variable fastest:
    [strides_of f].(i) is the index step when [vars f].(i) advances by
    one.  A fresh array per call. *)

val get : t -> int array -> float
(** [get f asg]: value at the assignment given in [vars f] order. *)

val mentions : t -> int -> bool
(** Scope membership (early-exit scan of the sorted scope). *)

val product : t -> t -> t
(** Pointwise product over the union of scopes. *)

val product_all : t list -> t
(** Multiply a whole list over the union scope in one odometer pass.
    Entry values associate left over the list order, so the result is
    bitwise equal to [List.fold_left product] — without the intermediate
    tables.  [product_all \[\]] is [constant 1.0]. *)

val sum_out : t -> int -> t
(** [sum_out f v] marginalizes variable [v] away.  If [v] is not in the
    scope, [f] is returned unchanged. *)

val sum_out_product : ?scratch:scratch -> t list -> int -> t
(** [sum_out_product fs v]: [sum_out (product_all fs) v] fused into a
    single pass that never materializes the product table, with identical
    floating-point results (same multiplication association, same
    summation order).  This is the variable-elimination step.  With
    [?scratch], the output table is checked out of the pool instead of
    allocated — see {!scratch} for the ownership contract.  Raises
    [Invalid_argument] on an empty list. *)

val restrict : t -> int -> int -> t
(** [restrict f v x] slices the table at [v = x], removing [v] from the
    scope.  No-op if [v] is not in scope. *)

val observe : t -> int -> (int -> bool) -> t
(** [observe f v allowed] zeroes entries whose [v]-value fails [allowed],
    keeping [v] in scope.  Used for range/set predicates: restricting to a
    set and later summing [v] out computes P(v ∈ S, ...).  The predicate
    is evaluated once per {e value} of [v] (not once per table entry) and
    the zeroing runs on stride slabs.  No-op if [v] is not in scope. *)

val observe_mask : t -> int -> bool array -> t
(** [observe] with the allowed set already tabulated; [mask] must have
    length [card v].  When every value is allowed the factor is returned
    physically unchanged.  No-op if [v] is not in scope. *)

val total : t -> float
(** Sum of all entries. *)

val normalize : t -> t

val marginal : t -> int array -> t
(** [marginal f keep] sums out every variable not in [keep], in one fused
    pass over the table ({!marginalize_onto}). *)

val marginalize_onto : t -> int array -> t
(** [marginalize_onto f keep]: project [f] onto [keep ∩ vars f], summing
    all other variables out in a single table pass (rather than one
    [sum_out] pass per variable).  [keep] need not be sorted and may
    mention variables outside the scope. *)

val mem_sorted : int array -> int -> bool
(** Membership in a sorted int array (the scope/keep-set representation
    used across the inference layer). *)

val scratch : unit -> scratch

val release : scratch -> t -> unit
(** Return the factor's table to the pool.  Only release factors produced
    by [sum_out_product ~scratch] / [product_into] on the same pool —
    releasing a shared factor would let the pool overwrite it. *)

val product_into : scratch -> t -> t -> t
(** {!product} writing its output into a pool buffer. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

(** The pre-optimization per-entry kernels, kept as a property-test oracle
    for the stride kernels above. *)
module Reference : sig
  val sum_out : t -> int -> t
  val restrict : t -> int -> int -> t
  val observe : t -> int -> (int -> bool) -> t
  val product : t -> t -> t
  val marginal : t -> int array -> t
end
