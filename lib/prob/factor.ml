open Selest_util

type t = { vars : int array; cards : int array; data : float array }

let check_sorted vars =
  for i = 1 to Array.length vars - 1 do
    if vars.(i - 1) >= vars.(i) then
      invalid_arg "Factor: vars must be strictly increasing"
  done

(* Overflow-checked product of cardinalities. *)
let table_size cards =
  Array.fold_left
    (fun acc c ->
      if c > 0 && acc > max_int / c then invalid_arg "Factor: table too large";
      acc * c)
    1 cards

let create ~vars ~cards data =
  if Array.length vars <> Array.length cards then
    invalid_arg "Factor.create: vars/cards length mismatch";
  check_sorted vars;
  Array.iter (fun c -> if c <= 0 then invalid_arg "Factor.create: card <= 0") cards;
  if Array.length data <> table_size cards then
    invalid_arg "Factor.create: data size mismatch";
  { vars; cards; data }

(* Strides for row-major layout, last variable fastest. *)
let strides cards =
  let n = Array.length cards in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * cards.(i + 1)
  done;
  s

let of_fun ~vars ~cards f =
  check_sorted vars;
  let n = Array.length vars in
  let size = table_size cards in
  let asg = Array.make n 0 in
  let data = Array.make size 0.0 in
  for idx = 0 to size - 1 do
    data.(idx) <- f asg;
    (* advance the assignment odometer, last variable fastest *)
    if idx < size - 1 then begin
      let k = ref (n - 1) in
      let carry = ref true in
      while !carry do
        let d = asg.(!k) + 1 in
        if d = cards.(!k) then begin
          asg.(!k) <- 0;
          decr k
        end
        else begin
          asg.(!k) <- d;
          carry := false
        end
      done
    end
  done;
  { vars; cards; data }

let constant c = { vars = [||]; cards = [||]; data = [| c |] }
let vars t = Array.copy t.vars
let cards t = Array.copy t.cards
let size t = Array.length t.data
let data t = Array.copy t.data
let unsafe_data t = t.data
let strides_of t = strides t.cards

let index_of t asg =
  let s = strides t.cards in
  let idx = ref 0 in
  for i = 0 to Array.length t.vars - 1 do
    let v = asg.(i) in
    if v < 0 || v >= t.cards.(i) then invalid_arg "Factor.get: value out of range";
    idx := !idx + (v * s.(i))
  done;
  !idx

let get t asg =
  if Array.length asg <> Array.length t.vars then
    invalid_arg "Factor.get: assignment arity mismatch";
  t.data.(index_of t asg)

let position t v =
  let rec loop i =
    if i >= Array.length t.vars then None
    else if t.vars.(i) = v then Some i
    else if t.vars.(i) > v then None
    else loop (i + 1)
  in
  loop 0

let mentions t v = position t v <> None

let union_vars a b =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  let na = Array.length a.vars and nb = Array.length b.vars in
  while !i < na || !j < nb do
    if !i >= na then begin
      out := (b.vars.(!j), b.cards.(!j)) :: !out;
      incr j
    end
    else if !j >= nb then begin
      out := (a.vars.(!i), a.cards.(!i)) :: !out;
      incr i
    end
    else if a.vars.(!i) < b.vars.(!j) then begin
      out := (a.vars.(!i), a.cards.(!i)) :: !out;
      incr i
    end
    else if a.vars.(!i) > b.vars.(!j) then begin
      out := (b.vars.(!j), b.cards.(!j)) :: !out;
      incr j
    end
    else begin
      if a.cards.(!i) <> b.cards.(!j) then
        invalid_arg "Factor.product: cardinality disagreement";
      out := (a.vars.(!i), a.cards.(!i)) :: !out;
      incr i;
      incr j
    end
  done;
  let pairs = Array.of_list (List.rev !out) in
  (Array.map fst pairs, Array.map snd pairs)

(* Union scope of a list of factors, in one merged pass. *)
let union_scope fs =
  match fs with
  | [] -> ([||], [||])
  | f :: rest ->
    List.fold_left
      (fun (uvars, ucards) g -> union_vars { vars = uvars; cards = ucards; data = [||] } g)
      (f.vars, f.cards) rest

(* For each union digit, the operand's stride (0 when the variable is
   absent), so operand indices follow the odometer incrementally. *)
let strides_in ~uvars f =
  let s = strides f.cards in
  Array.map (fun v -> match position f v with Some p -> s.(p) | None -> 0) uvars

let product a b =
  let uvars, ucards = union_vars a b in
  let n = Array.length uvars in
  let usize = table_size ucards in
  Selest_obs.Hotpath.kernel ~entries:usize ~out:usize;
  let stride_a = strides_in ~uvars a and stride_b = strides_in ~uvars b in
  let digits = Array.make n 0 in
  let data = Array.make usize 0.0 in
  let ia = ref 0 and ib = ref 0 in
  for idx = 0 to usize - 1 do
    data.(idx) <- a.data.(!ia) *. b.data.(!ib);
    (* advance odometer from the last (fastest) digit *)
    let k = ref (n - 1) in
    let carry = ref (idx < usize - 1) in
    while !carry && !k >= 0 do
      let d = digits.(!k) + 1 in
      if d = ucards.(!k) then begin
        digits.(!k) <- 0;
        ia := !ia - ((ucards.(!k) - 1) * stride_a.(!k));
        ib := !ib - ((ucards.(!k) - 1) * stride_b.(!k));
        decr k
      end
      else begin
        digits.(!k) <- d;
        ia := !ia + stride_a.(!k);
        ib := !ib + stride_b.(!k);
        carry := false
      end
    done
  done;
  { vars = uvars; cards = ucards; data }

let remove_at arr i =
  Array.init (Array.length arr - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

(* ---- scratch buffers ----------------------------------------------------

   A checkout pool of exactly-sized float arrays, so a long inference run
   reuses the same handful of tables instead of allocating one per
   elimination step.  Callers take a buffer, build a factor around it, and
   release it once the factor is dead; the pool never hands out a buffer
   that has not been released. *)

type scratch = (int, float array list ref) Hashtbl.t

let scratch () : scratch = Hashtbl.create 8

let scratch_take (sc : scratch) size =
  match Hashtbl.find_opt sc size with
  | Some ({ contents = buf :: rest } as slot) ->
    Selest_obs.Hotpath.scratch_hit ();
    slot := rest;
    buf
  | _ ->
    Selest_obs.Hotpath.scratch_miss ();
    Array.make size 0.0

let scratch_release (sc : scratch) (buf : float array) =
  let size = Array.length buf in
  match Hashtbl.find_opt sc size with
  | Some slot -> slot := buf :: !slot
  | None -> Hashtbl.add sc size (ref [ buf ])

let release sc t = scratch_release sc t.data

(* ---- fused stride kernels ----------------------------------------------- *)

let sum_out t v =
  match position t v with
  | None -> t
  | Some p ->
    let s = strides t.cards in
    let sp = s.(p) and cv = t.cards.(p) in
    let new_vars = remove_at t.vars p and new_cards = remove_at t.cards p in
    let new_size = table_size new_cards in
    Selest_obs.Hotpath.kernel ~entries:(Array.length t.data) ~out:new_size;
    let data = Array.make new_size 0.0 in
    let old = t.data in
    let block = sp * cv in
    let n_hi = Array.length old / block in
    (* Accumulate slabs: out(hi,lo) += in(hi,x,lo), x-major like the
       row-major scan, so summation order matches the naive kernel. *)
    for hi = 0 to n_hi - 1 do
      let base_old = hi * block and base_new = hi * sp in
      for x = 0 to cv - 1 do
        let off = base_old + (x * sp) in
        for lo = 0 to sp - 1 do
          data.(base_new + lo) <- data.(base_new + lo) +. old.(off + lo)
        done
      done
    done;
    { vars = new_vars; cards = new_cards; data }

let restrict t v x =
  match position t v with
  | None -> t
  | Some p ->
    if x < 0 || x >= t.cards.(p) then invalid_arg "Factor.restrict: value out of range";
    let s = strides t.cards in
    let sp = s.(p) in
    let block = sp * t.cards.(p) in
    let new_vars = remove_at t.vars p and new_cards = remove_at t.cards p in
    let new_size = table_size new_cards in
    let data = Array.make new_size 0.0 in
    let n_hi = new_size / sp in
    for hi = 0 to n_hi - 1 do
      Array.blit t.data ((hi * block) + (x * sp)) data (hi * sp) sp
    done;
    { vars = new_vars; cards = new_cards; data }

let observe_mask t v mask =
  match position t v with
  | None -> t
  | Some p ->
    let cv = t.cards.(p) in
    if Array.length mask <> cv then invalid_arg "Factor.observe: mask arity mismatch";
    if Array.for_all Fun.id mask then t
    else begin
      let s = strides t.cards in
      let sp = s.(p) in
      let block = sp * cv in
      let data = Array.copy t.data in
      let n_hi = Array.length data / block in
      for hi = 0 to n_hi - 1 do
        for x = 0 to cv - 1 do
          if not mask.(x) then Array.fill data ((hi * block) + (x * sp)) sp 0.0
        done
      done;
      { t with data }
    end

let observe t v allowed =
  match position t v with
  | None -> t
  | Some p ->
    (* Evaluate the predicate once per value, not once per table entry. *)
    let mask = Array.init t.cards.(p) allowed in
    observe_mask t v mask

(* Multiply [fs] over their union scope in a single odometer pass; entry
   values associate left over the list order, matching a [product] fold. *)
let product_all = function
  | [] -> constant 1.0
  | [ f ] -> f
  | _ :: _ :: _ as fs ->
    let uvars, ucards = union_scope fs in
    let n = Array.length uvars in
    let usize = table_size ucards in
    Selest_obs.Hotpath.kernel ~entries:usize ~out:usize;
    let ops = Array.of_list fs in
    let k = Array.length ops in
    let datas = Array.map (fun f -> f.data) ops in
    let op_strides = Array.map (fun f -> strides_in ~uvars f) ops in
    let idxs = Array.make k 0 in
    let digits = Array.make n 0 in
    let data = Array.make usize 0.0 in
    for u = 0 to usize - 1 do
      let prod = ref datas.(0).(idxs.(0)) in
      for j = 1 to k - 1 do
        prod := !prod *. datas.(j).(idxs.(j))
      done;
      data.(u) <- !prod;
      if u < usize - 1 then begin
        let c = ref (n - 1) in
        let carry = ref true in
        while !carry do
          let d = digits.(!c) + 1 in
          if d = ucards.(!c) then begin
            digits.(!c) <- 0;
            let back = ucards.(!c) - 1 in
            for j = 0 to k - 1 do
              idxs.(j) <- idxs.(j) - (back * op_strides.(j).(!c))
            done;
            decr c
          end
          else begin
            digits.(!c) <- d;
            for j = 0 to k - 1 do
              idxs.(j) <- idxs.(j) + op_strides.(j).(!c)
            done;
            carry := false
          end
        done
      end
    done;
    { vars = uvars; cards = ucards; data }

(* Σ_v Π fs in one pass: the variable-elimination step without the
   intermediate product table.  Accumulation order per output cell matches
   [sum_out (product_all fs) v] exactly (increasing value of [v]). *)
let sum_out_product ?scratch fs v =
  match fs with
  | [] -> invalid_arg "Factor.sum_out_product: empty factor list"
  | [ f ] when Option.is_none scratch -> sum_out f v
  | fs ->
    let uvars, ucards = union_scope fs in
    let n = Array.length uvars in
    let usize = table_size ucards in
    let p =
      let rec find i =
        if i >= n then -1 else if uvars.(i) = v then i else find (i + 1)
      in
      find 0
    in
    if p < 0 then
      (* no factor mentions v: plain product *)
      product_all fs
    else begin
      let out_vars = remove_at uvars p and out_cards = remove_at ucards p in
      let out_size = table_size out_cards in
      Selest_obs.Hotpath.kernel ~entries:usize ~out:out_size;
      let out_strides_reduced = strides out_cards in
      (* stride of each union digit in the output table; 0 for v itself *)
      let out_stride =
        Array.init n (fun i ->
            if i = p then 0
            else if i < p then out_strides_reduced.(i)
            else out_strides_reduced.(i - 1))
      in
      let ops = Array.of_list fs in
      let k = Array.length ops in
      let datas = Array.map (fun f -> f.data) ops in
      let op_strides = Array.map (fun f -> strides_in ~uvars f) ops in
      let idxs = Array.make k 0 in
      let digits = Array.make n 0 in
      let data =
        match scratch with
        | Some sc ->
          let buf = scratch_take sc out_size in
          Array.fill buf 0 out_size 0.0;
          buf
        | None -> Array.make out_size 0.0
      in
      let iout = ref 0 in
      for u = 0 to usize - 1 do
        let prod = ref datas.(0).(idxs.(0)) in
        for j = 1 to k - 1 do
          prod := !prod *. datas.(j).(idxs.(j))
        done;
        data.(!iout) <- data.(!iout) +. !prod;
        if u < usize - 1 then begin
          let c = ref (n - 1) in
          let carry = ref true in
          while !carry do
            let d = digits.(!c) + 1 in
            if d = ucards.(!c) then begin
              digits.(!c) <- 0;
              let back = ucards.(!c) - 1 in
              for j = 0 to k - 1 do
                idxs.(j) <- idxs.(j) - (back * op_strides.(j).(!c))
              done;
              iout := !iout - (back * out_stride.(!c));
              decr c
            end
            else begin
              digits.(!c) <- d;
              for j = 0 to k - 1 do
                idxs.(j) <- idxs.(j) + op_strides.(j).(!c)
              done;
              iout := !iout + out_stride.(!c);
              carry := false
            end
          done
        end
      done;
      { vars = out_vars; cards = out_cards; data }
    end

let product_into sc a b =
  let uvars, ucards = union_vars a b in
  let n = Array.length uvars in
  let usize = table_size ucards in
  Selest_obs.Hotpath.kernel ~entries:usize ~out:usize;
  let stride_a = strides_in ~uvars a and stride_b = strides_in ~uvars b in
  let digits = Array.make n 0 in
  let data = scratch_take sc usize in
  let ia = ref 0 and ib = ref 0 in
  for idx = 0 to usize - 1 do
    data.(idx) <- a.data.(!ia) *. b.data.(!ib);
    let k = ref (n - 1) in
    let carry = ref (idx < usize - 1) in
    while !carry && !k >= 0 do
      let d = digits.(!k) + 1 in
      if d = ucards.(!k) then begin
        digits.(!k) <- 0;
        ia := !ia - ((ucards.(!k) - 1) * stride_a.(!k));
        ib := !ib - ((ucards.(!k) - 1) * stride_b.(!k));
        decr k
      end
      else begin
        digits.(!k) <- d;
        ia := !ia + stride_a.(!k);
        ib := !ib + stride_b.(!k);
        carry := false
      end
    done
  done;
  { vars = uvars; cards = ucards; data }

let total t = Arrayx.sum t.data

let normalize t =
  let z = total t in
  if z > 0.0 then { t with data = Array.map (fun x -> x /. z) t.data }
  else { t with data = Array.make (Array.length t.data) (1.0 /. float_of_int (Array.length t.data)) }

(* Membership in a small sorted int array (scopes are tiny: linear scan
   with early exit beats binary search at these sizes). *)
let mem_sorted arr v =
  let n = Array.length arr in
  let rec go i = i < n && (arr.(i) = v || (arr.(i) < v && go (i + 1))) in
  go 0

(* Sum several variables out in one pass: walk the source table with an
   odometer whose output stride is 0 for every summed variable. *)
let marginalize_onto t keep =
  let keep = Array.copy keep in
  Array.sort compare keep;
  let n = Array.length t.vars in
  let kept = Array.map (fun v -> mem_sorted keep v) t.vars in
  if Array.for_all Fun.id kept then t
  else begin
    let out_vars = ref [] and out_cards = ref [] in
    for i = n - 1 downto 0 do
      if kept.(i) then begin
        out_vars := t.vars.(i) :: !out_vars;
        out_cards := t.cards.(i) :: !out_cards
      end
    done;
    let out_vars = Array.of_list !out_vars and out_cards = Array.of_list !out_cards in
    let out_size = table_size out_cards in
    Selest_obs.Hotpath.kernel ~entries:(Array.length t.data) ~out:out_size;
    let out_strides_reduced = strides out_cards in
    let out_stride = Array.make n 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if kept.(i) then begin
        out_stride.(i) <- out_strides_reduced.(!j);
        incr j
      end
    done;
    let data = Array.make out_size 0.0 in
    let digits = Array.make n 0 in
    let iout = ref 0 in
    let src = t.data in
    let size = Array.length src in
    for idx = 0 to size - 1 do
      data.(!iout) <- data.(!iout) +. src.(idx);
      if idx < size - 1 then begin
        let c = ref (n - 1) in
        let carry = ref true in
        while !carry do
          let d = digits.(!c) + 1 in
          if d = t.cards.(!c) then begin
            digits.(!c) <- 0;
            iout := !iout - ((t.cards.(!c) - 1) * out_stride.(!c));
            decr c
          end
          else begin
            digits.(!c) <- d;
            iout := !iout + out_stride.(!c);
            carry := false
          end
        done
      end
    done;
    { vars = out_vars; cards = out_cards; data }
  end

let marginal t keep = marginalize_onto t keep

let equal ?(eps = 1e-9) a b =
  a.vars = b.vars && a.cards = b.cards
  && Array.for_all2 (fun x y -> Arrayx.float_equal ~eps x y) a.data b.data

let pp ppf t =
  Format.fprintf ppf "factor over [%s] (%d entries)"
    (String.concat "," (Array.to_list (Array.map string_of_int t.vars)))
    (Array.length t.data)

(* ---- reference implementations ------------------------------------------

   The pre-optimization per-entry decode kernels, kept verbatim as a test
   oracle: the stride kernels above must agree with these bit for bit
   (sum_out, restrict, observe) or within float tolerance (marginal). *)

module Reference = struct
  let sum_out t v =
    match position t v with
    | None -> t
    | Some p ->
      let n = Array.length t.vars in
      let card_v = t.cards.(p) in
      let s = strides t.cards in
      let new_vars = remove_at t.vars p and new_cards = remove_at t.cards p in
      let new_size = table_size new_cards in
      let data = Array.make new_size 0.0 in
      let digits = Array.make n 0 in
      let old_size = Array.length t.data in
      for idx = 0 to old_size - 1 do
        let rem = ref idx in
        for i = n - 1 downto 0 do
          digits.(i) <- !rem mod t.cards.(i);
          rem := !rem / t.cards.(i)
        done;
        let reduced = idx - (digits.(p) * s.(p)) in
        let hi = reduced / (s.(p) * card_v) and lo = reduced mod s.(p) in
        data.((hi * s.(p)) + lo) <- data.((hi * s.(p)) + lo) +. t.data.(idx)
      done;
      { vars = new_vars; cards = new_cards; data }

  let restrict t v x =
    match position t v with
    | None -> t
    | Some p ->
      if x < 0 || x >= t.cards.(p) then invalid_arg "Factor.restrict: value out of range";
      let s = strides t.cards in
      let card_v = t.cards.(p) in
      let new_vars = remove_at t.vars p and new_cards = remove_at t.cards p in
      let new_size = table_size new_cards in
      let data = Array.make new_size 0.0 in
      for j = 0 to new_size - 1 do
        let hi = j / s.(p) and lo = j mod s.(p) in
        data.(j) <- t.data.((hi * s.(p) * card_v) + (x * s.(p)) + lo)
      done;
      { vars = new_vars; cards = new_cards; data }

  let observe t v allowed =
    match position t v with
    | None -> t
    | Some p ->
      let n = Array.length t.vars in
      let data = Array.copy t.data in
      let digits = Array.make n 0 in
      for idx = 0 to Array.length data - 1 do
        let rem = ref idx in
        for i = n - 1 downto 0 do
          digits.(i) <- !rem mod t.cards.(i);
          rem := !rem / t.cards.(i)
        done;
        if not (allowed digits.(p)) then data.(idx) <- 0.0
      done;
      { t with data }

  let product = product

  let marginal t keep =
    let keep_set = Array.to_list keep in
    Array.fold_left
      (fun acc v -> if List.mem v keep_set then acc else sum_out acc v)
      t t.vars
end
