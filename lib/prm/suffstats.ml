open Selest_util
open Selest_db
open Selest_bn

let extended_data db ti =
  let tbl = Database.table_at db ti in
  let ts = Table.schema tbl in
  let own_names = Array.map (fun a -> a.Schema.aname) ts.Schema.attrs in
  let own_cards = Table.cards tbl in
  let own_ordinal = Array.map (fun a -> Value.is_ordinal a.Schema.domain) ts.Schema.attrs in
  let own_cols = Array.init (Array.length own_names) (fun i -> Table.col tbl i) in
  let foreign =
    Array.to_list ts.Schema.fks
    |> List.mapi (fun fi f ->
           let target = Database.table db f.Schema.target in
           let tts = Table.schema target in
           let fk_col = Table.fk_col tbl fi in
           Array.to_list tts.Schema.attrs
           |> List.mapi (fun b a ->
                  let target_col = Table.col target b in
                  let resolved = Array.map (fun row -> target_col.(row)) fk_col in
                  ( f.Schema.target ^ "." ^ a.Schema.aname,
                    Value.card a.Schema.domain,
                    Value.is_ordinal a.Schema.domain,
                    resolved )))
    |> List.concat
  in
  let names =
    Array.append own_names (Array.of_list (List.map (fun (n, _, _, _) -> n) foreign))
  in
  let cards =
    Array.append own_cards (Array.of_list (List.map (fun (_, c, _, _) -> c) foreign))
  in
  let ordinal =
    Array.append own_ordinal (Array.of_list (List.map (fun (_, _, o, _) -> o) foreign))
  in
  let cols =
    Array.append own_cols (Array.of_list (List.map (fun (_, _, _, c) -> c) foreign))
  in
  Data.create ~names ~cards ~ordinal cols

type join_stats = { cpd : Cpd.t; loglik : float; params : int; bytes : int }

(* Key column of [dims] (attribute indices of [tbl], registered in the
   kernel under table id [table_id]) plus its joint size. *)
let table_keys counts ~table_id tbl dims =
  let cards = Array.map (fun a -> Table.attr_card tbl a) dims in
  let cols = Array.map (fun a -> Table.col tbl a) dims in
  Selest_prob.Counts.keys counts ~table:table_id ~dims ~cards ~cols
    ~n_rows:(Table.size tbl)

let table_counts counts ~table_id tbl dims =
  let cards = Array.map (fun a -> Table.attr_card tbl a) dims in
  let cols = Array.map (fun a -> Table.col tbl a) dims in
  Selest_prob.Counts.counts counts ~table:table_id ~dims ~cards ~cols
    ~n_rows:(Table.size tbl)

(* The shared core of fit_join / join_loglik_under: split the parents into
   own and target blocks, and produce (pos, own_counts, target_counts)
   with one fused pass over the child table.  Key columns and the two
   count vectors come from the kernel, so candidate families that share
   an attribute set (or a prefix of one) never rescan it; the combined
   configuration is [own_key * target_configs + target_key] — the exact
   integer the digit-by-digit scans computed, keeping counts (and hence
   the search trajectory) bit-identical. *)
let join_statistics ?counts db ~table ~fk ~own_parents ~target_parents
    ~parent_cards ~configs =
  let counts =
    match counts with Some c -> c | None -> Selest_prob.Counts.create ()
  in
  let tbl = Database.table_at db table in
  let ts = Table.schema tbl in
  let target_name = ts.Schema.fks.(fk).Schema.target in
  let target = Database.table db target_name in
  let target_id = Schema.table_index (Database.schema db) target_name in
  let n_own = Array.length own_parents in
  let target_config_count =
    Selest_prob.Contingency.joint_size
      (Array.sub parent_cards n_own (Array.length target_parents))
  in
  let own_key, _ = table_keys counts ~table_id:table tbl own_parents in
  let tgt_key, _ = table_keys counts ~table_id:target_id target target_parents in
  let own_counts = table_counts counts ~table_id:table tbl own_parents in
  let target_counts = table_counts counts ~table_id:target_id target target_parents in
  (* Positives: joined pairs per configuration — one per child row. *)
  let pos = Array.make configs 0.0 in
  let fk_col = Table.fk_col tbl fk in
  for r = 0 to Table.size tbl - 1 do
    let cfg = (own_key.(r) * target_config_count) + tgt_key.(fk_col.(r)) in
    pos.(cfg) <- pos.(cfg) +. 1.0
  done;
  Selest_prob.Counts.record_scan ();
  (pos, own_counts, target_counts, target_config_count)

(* Own/target split of a (sorted) parent array; validates fk routing. *)
let split_parents ~who ~fk parents =
  let own_parents = ref [] and target_parents = ref [] in
  Array.iter
    (fun p ->
      match p with
      | Model.Own a -> own_parents := a :: !own_parents
      | Model.Foreign (f, b) ->
        if f <> fk then
          invalid_arg (who ^ ": foreign parent through a different fk");
        target_parents := b :: !target_parents)
    parents;
  (Array.of_list (List.rev !own_parents), Array.of_list (List.rev !target_parents))

let fit_join ?counts db ~table ~fk ~parents =
  let schema = Database.schema db in
  let scope = Model.Scope.of_table schema table in
  let tbl = Database.table_at db table in
  let ts = Table.schema tbl in
  if fk < 0 || fk >= Array.length ts.Schema.fks then invalid_arg "Suffstats.fit_join: fk";
  (* Validate parents: own attributes or attributes of this fk's target,
     sorted by local id (own block precedes the foreign block). *)
  let own_parents, target_parents =
    split_parents ~who:"Suffstats.fit_join" ~fk parents
  in
  let local_ids = Array.map (Model.Scope.local_id scope) parents in
  Array.iteri
    (fun i id -> if i > 0 && local_ids.(i - 1) >= id then
        invalid_arg "Suffstats.fit_join: parents not sorted by local id")
    local_ids;
  let parent_cards = Array.map (Model.Scope.card scope) local_ids in
  (* Overflow-checked joint size: the same guard Contingency uses. *)
  let configs = Selest_prob.Contingency.joint_size parent_cards in
  (* Totals: cnt_R(own config) * cnt_S(target config).  Target parents
     occupy the least-significant digits of the configuration (their local
     ids are larger), so a configuration splits as own * target. *)
  let pos, own_counts, target_counts, target_config_count =
    join_statistics ?counts db ~table ~fk ~own_parents ~target_parents
      ~parent_cards ~configs
  in
  (* Assemble the CPD table and the pair-level log-likelihood. *)
  let table_entries = Array.make (configs * 2) 0.0 in
  let loglik = ref 0.0 in
  for cfg = 0 to configs - 1 do
    let own_cfg = cfg / target_config_count in
    let target_cfg = cfg mod target_config_count in
    let total = own_counts.(own_cfg) *. target_counts.(target_cfg) in
    let p = if total > 0.0 then pos.(cfg) /. total else 0.0 in
    table_entries.((cfg * 2) + 0) <- 1.0 -. p;
    table_entries.((cfg * 2) + 1) <- p;
    if total > 0.0 then begin
      if p > 0.0 then loglik := !loglik +. (pos.(cfg) *. Arrayx.log2 p);
      if p < 1.0 then
        loglik := !loglik +. ((total -. pos.(cfg)) *. Arrayx.log2 (1.0 -. p))
    end
  done;
  let cpd =
    Cpd.Table (Table_cpd.of_table ~child_card:2 ~parents:local_ids ~parent_cards table_entries)
  in
  let params = configs in
  { cpd; loglik = !loglik; params; bytes = Bytesize.params params + Bytesize.values (Array.length parents) }

let join_loglik_under ?counts db ~table ~fk cpd =
  let schema = Database.schema db in
  let scope = Model.Scope.of_table schema table in
  (* Recompute the pair statistics (cheap) and score them under [cpd]'s
     probabilities instead of the maximum-likelihood ones. *)
  let parents = Array.map (Model.Scope.parent_of_local scope) (Cpd.parents cpd) in
  let own_parents = ref [] and target_parents = ref [] in
  Array.iter
    (function
      | Model.Own a -> own_parents := a :: !own_parents
      | Model.Foreign (_, b) -> target_parents := b :: !target_parents)
    parents;
  let own_parents = Array.of_list (List.rev !own_parents) in
  let target_parents = Array.of_list (List.rev !target_parents) in
  let local_ids = Array.map (Model.Scope.local_id scope) parents in
  let parent_cards = Array.map (Model.Scope.card scope) local_ids in
  let configs = Selest_prob.Contingency.joint_size parent_cards in
  let pos, own_counts, target_counts, target_config_count =
    join_statistics ?counts db ~table ~fk ~own_parents ~target_parents
      ~parent_cards ~configs
  in
  let pvals = Array.make (Array.length parents) 0 in
  let loglik = ref 0.0 in
  for cfg = 0 to configs - 1 do
    let own_cfg = cfg / target_config_count in
    let target_cfg = cfg mod target_config_count in
    let total = own_counts.(own_cfg) *. target_counts.(target_cfg) in
    if total > 0.0 then begin
      let rem = ref cfg in
      for i = Array.length parents - 1 downto 0 do
        pvals.(i) <- !rem mod parent_cards.(i);
        rem := !rem / parent_cards.(i)
      done;
      let p = (Cpd.dist cpd pvals).(1) in
      if pos.(cfg) > 0.0 then
        loglik := !loglik +. (pos.(cfg) *. Arrayx.log2 (Float.max p 1e-300));
      if total -. pos.(cfg) > 0.0 then
        loglik :=
          !loglik +. ((total -. pos.(cfg)) *. Arrayx.log2 (Float.max (1.0 -. p) 1e-300))
    end
  done;
  !loglik
