(** Probabilistic relational models (Def. 3.1).

    A PRM specifies, for every value attribute [R.A] of every table and for
    every foreign key [F] of every table, a local probabilistic model:
    {ul
    {- the parents of [R.A] may be attributes of [R] itself ([Own]) or
       attributes of the table a foreign key of [R] points to ([Foreign]);}
    {- each foreign key has a binary {e join indicator} variable [J_F]
       modelling the event [t.F = s.key] for independently drawn tuples;
       its parents may come from either side of the join.}}

    Cross-table attribute CPDs are the [J = true] fork of the paper's gated
    CPDs: they are fitted from, and only ever evaluated on, joined pairs
    (selectivity estimation always conditions every closure join indicator
    on [true], so the [false] fork never contributes — see {!Estimate}).

    {2 Local variable ids}

    CPDs inside a table's scope use a flat id space so that the generic
    {!Selest_bn.Cpd} machinery applies unchanged:
    {ul
    {- own attribute [a] has id [a];}
    {- foreign attribute [b] reached through foreign key [f] has id
       [n_attrs + fk_offset f + b];}
    {- the join indicator of foreign key [f] has id [n_ext + f] (these are
       the largest ids, so a join indicator is never a parent).}} *)

type parent =
  | Own of int  (** attribute index within the same table *)
  | Foreign of int * int  (** (foreign-key index, attribute index in its target) *)

type family = {
  parents : parent array;  (** in local-id order *)
  cpd : Selest_bn.Cpd.t;  (** over local ids *)
}

type table_model = {
  attr_families : family array;  (** one per value attribute *)
  join_families : family array;  (** one per foreign key; child card 2 *)
}

type t = {
  schema : Selest_db.Schema.t;
  tables : table_model array;  (** in schema order *)
}

(** Local-id arithmetic for one table's scope. *)
module Scope : sig
  type s

  val of_table : Selest_db.Schema.t -> int -> s
  val n_attrs : s -> int
  val n_ext : s -> int
  (** Own attributes plus all foreign attributes. *)

  val n_all : s -> int
  (** [n_ext] plus one join-indicator id per foreign key. *)

  val local_id : s -> parent -> int
  val join_id : s -> int -> int
  (** Local id of foreign key [f]'s join indicator. *)

  val parent_of_local : s -> int -> parent
  (** Inverse of [local_id]; raises on a join-indicator id. *)

  val card : s -> int -> int
  (** Cardinality of any local id (2 for join indicators). *)

  val name : s -> int -> string
  (** Human-readable name, e.g. "Age", "district.Region", "J_account". *)
end

val create : Selest_db.Schema.t -> table_model array -> t
(** Validates family shapes against the schema (arity, parent ranges). *)

val scope : t -> int -> Scope.s

val fingerprint : t -> string
(** Hex digest of the model's {e dependency structure}: the schema plus
    every family's parents and arities (CPD parameters excluded).  Two
    models with equal fingerprints build identically-shaped
    query-evaluation networks for any query, which is exactly what the
    elimination-order cache ({!Selest_bn.Ve}) needs its key to
    guarantee. *)

val size_bytes : t -> int
(** Total model storage under the library-wide accounting. *)

val n_cross_edges : t -> int
(** Cross-table attribute dependencies (diagnostic). *)

val n_join_parents : t -> int
(** Total parents over all join indicators (0 = uniform-join model). *)

val pp : Format.formatter -> t -> unit
