(** PRM structure search (Sec. 4.3, relational version).

    The same greedy hill-climbing as {!Selest_bn.Learn}, with the move set
    extended to the relational setting:
    {ul
    {- add/remove an {e own} parent [R.B -> R.A];}
    {- add/remove a {e cross-table} parent [S.B -> R.A] through a foreign
       key [R.F -> S] (legal only while the structure stays attribute-
       acyclic and table-stratified, Def. 3.2);}
    {- add/remove a parent of a {e join indicator} [J_F], from either side
       of the join.}}

    Attribute families are scored on the table's extended (joined) view;
    join-indicator families are scored on the full pair space using the
    closed-form statistics of {!Suffstats.fit_join}.  One byte budget
    covers the whole model.

    Disabling cross-table and join parents yields the BN+UJ baseline of
    Sec. 5 (independent per-table BNs plus the uniform-join assumption). *)

type config = {
  kind : Selest_bn.Cpd.kind;
  budget_bytes : int;
  max_parents : int;
  rule : Selest_bn.Learn.rule;
  allow_cross_table : bool;
  allow_join_parents : bool;
  random_restarts : int;
  random_walk_length : int;
  seed : int;
  workers : int;
      (** Domains used to score candidate moves in parallel; [<= 1] is
          fully sequential.  Clamped to the host's spare cores
          ({!Selest_util.Pool.default_size}), so a single-core host always
          scores sequentially.  The search trajectory (and hence the
          learned model) is identical for every worker count: scored moves
          are folded in move order regardless of completion order. *)
}

val default_config : budget_bytes:int -> config
(** Trees, SSN, full relational move set, [max_parents = 3], 1 restart,
    sequential scoring. *)

val bn_uj_config : budget_bytes:int -> config
(** {!default_config} with cross-table and join parents disabled: the
    BN+UJ baseline. *)

type result = {
  model : Model.t;
  loglik : float;  (** total structure score (bits); see note below *)
  bytes : int;
  iterations : int;
  trajectory : string list;
      (** Every accepted move (climb and random-walk alike), in order, as
          compact labels — the search's audit trail, compared verbatim
          between {!learn} and {!learn_reference}. *)
}

val learn : config:config -> Selest_db.Database.t -> result
(** The incremental climber: a delta move cache persists (move →
    evaluation) entries across climb iterations and invalidates only the
    accepted move's family; structure legality is answered by the
    {!Depgraph} oracle instead of per-candidate revalidation; join
    sufficient statistics flow through a shared count-once kernel
    ({!Selest_prob.Counts}).  Produces a bit-identical trajectory and
    model to {!learn_reference}.

    Note on [loglik]: attribute families contribute per-row bits,
    join-indicator families per-(tuple-pair) bits — the two live on
    different sample spaces, exactly as in the paper's unified model, so
    the total is meaningful for comparing structures but not per-row
    normalizable. *)

val learn_reference : config:config -> Selest_db.Database.t -> result
(** The naive climber retained as a trajectory oracle: re-enumerates,
    re-checks legality, and re-evaluates every candidate move on every
    iteration.  Same search contract as {!learn} — used by tests and the
    bench to certify the incremental path move-for-move. *)

val learn_prm : ?budget_bytes:int -> ?seed:int -> Selest_db.Database.t -> Model.t
(** Convenience wrapper (8KB budget, defaults otherwise). *)
