(** Saving and loading learned PRMs.

    The offline/online split of Sec. 1 implies models outlive the process
    that fitted them: a DBMS learns the PRM during maintenance windows and
    the optimizer loads it at query time.  Models are stored as
    S-expressions ({!Selest_util.Sexp}) together with a schema fingerprint;
    loading validates the fingerprint against the caller's schema so a
    model is never silently applied to a different database layout.

    Bayesian networks over a single table are PRMs over a one-table schema,
    so this covers them too. *)

exception Error of string
(** Raised on any failure to decode a saved model: unreadable file,
    malformed S-expression, wrong file type, unsupported version, or a
    schema-fingerprint mismatch.  A long-lived process (the estimation
    service's [LOAD] command in particular) can catch this one exception
    and turn a bad model file into a protocol error instead of dying. *)

val schema_fingerprint : Selest_db.Schema.t -> string
(** Hex digest of the schema's canonical serialization: table names,
    attribute names/cardinalities/ordinality and foreign keys.  Two schemas
    get the same fingerprint iff a model learned on one is applicable to
    the other.  Exposed so the serving layer can tag loaded models. *)

val to_sexp : Model.t -> Selest_util.Sexp.t

val of_sexp : schema:Selest_db.Schema.t -> Selest_util.Sexp.t -> Model.t
(** Raises {!Error} on malformed input or a schema mismatch. *)

val save : string -> Model.t -> unit

val load : string -> schema:Selest_db.Schema.t -> Model.t
(** Raises {!Error} on an unreadable or malformed file. *)
