open Selest_util
open Selest_db
open Selest_bn

type parent = Own of int | Foreign of int * int
type family = { parents : parent array; cpd : Cpd.t }
type table_model = { attr_families : family array; join_families : family array }
type t = { schema : Schema.t; tables : table_model array }

module Scope = struct
  type s = {
    n_attrs : int;
    fk_offsets : int array;  (* offset of each fk's foreign block, relative to n_attrs *)
    target_n_attrs : int array;
    n_ext : int;
    attr_cards : int array;
    foreign_cards : int array array;  (* per fk, per target attr *)
    attr_names : string array;
    fk_names : string array;
    foreign_names : string array array;
  }

  let of_table schema ti =
    let ts = (Schema.tables schema).(ti) in
    let n_attrs = Array.length ts.Schema.attrs in
    let n_fks = Array.length ts.Schema.fks in
    let target_schemas =
      Array.map (fun f -> Schema.find_table schema f.Schema.target) ts.Schema.fks
    in
    let target_n_attrs = Array.map (fun s -> Array.length s.Schema.attrs) target_schemas in
    let fk_offsets = Array.make n_fks 0 in
    for f = 1 to n_fks - 1 do
      fk_offsets.(f) <- fk_offsets.(f - 1) + target_n_attrs.(f - 1)
    done;
    let n_ext = n_attrs + Array.fold_left ( + ) 0 target_n_attrs in
    {
      n_attrs;
      fk_offsets;
      target_n_attrs;
      n_ext;
      attr_cards = Array.map (fun a -> Value.card a.Schema.domain) ts.Schema.attrs;
      foreign_cards =
        Array.map
          (fun s -> Array.map (fun a -> Value.card a.Schema.domain) s.Schema.attrs)
          target_schemas;
      attr_names = Array.map (fun a -> a.Schema.aname) ts.Schema.attrs;
      fk_names = Array.map (fun f -> f.Schema.fkname) ts.Schema.fks;
      foreign_names =
        Array.mapi
          (fun fi s ->
            Array.map
              (fun a -> ts.Schema.fks.(fi).Schema.target ^ "." ^ a.Schema.aname)
              s.Schema.attrs)
          target_schemas;
    }

  let n_attrs s = s.n_attrs
  let n_ext s = s.n_ext
  let n_all s = s.n_ext + Array.length s.fk_offsets

  let local_id s = function
    | Own a ->
      if a < 0 || a >= s.n_attrs then invalid_arg "Scope.local_id: attr out of range";
      a
    | Foreign (f, b) ->
      if f < 0 || f >= Array.length s.fk_offsets then
        invalid_arg "Scope.local_id: fk out of range";
      if b < 0 || b >= s.target_n_attrs.(f) then
        invalid_arg "Scope.local_id: foreign attr out of range";
      s.n_attrs + s.fk_offsets.(f) + b

  let join_id s f =
    if f < 0 || f >= Array.length s.fk_offsets then invalid_arg "Scope.join_id";
    s.n_ext + f

  let parent_of_local s id =
    if id < 0 || id >= s.n_ext then invalid_arg "Scope.parent_of_local: not a parent id";
    if id < s.n_attrs then Own id
    else begin
      let rel = id - s.n_attrs in
      let f = ref 0 in
      while
        !f + 1 < Array.length s.fk_offsets && rel >= s.fk_offsets.(!f + 1)
      do
        incr f
      done;
      Foreign (!f, rel - s.fk_offsets.(!f))
    end

  let card s id =
    if id < s.n_attrs then s.attr_cards.(id)
    else if id < s.n_ext then
      match parent_of_local s id with
      | Foreign (f, b) -> s.foreign_cards.(f).(b)
      | Own _ -> assert false
    else if id < n_all s then 2
    else invalid_arg "Scope.card: id out of range"

  let name s id =
    if id < s.n_attrs then s.attr_names.(id)
    else if id < s.n_ext then
      match parent_of_local s id with
      | Foreign (f, b) -> s.foreign_names.(f).(b)
      | Own _ -> assert false
    else if id < n_all s then "J_" ^ s.fk_names.(id - s.n_ext)
    else invalid_arg "Scope.name: id out of range"
end

let create schema tables =
  let schema_tables = Schema.tables schema in
  if Array.length tables <> Array.length schema_tables then
    invalid_arg "Model.create: table count mismatch";
  Array.iteri
    (fun ti tm ->
      let s = Scope.of_table schema ti in
      let ts = schema_tables.(ti) in
      if Array.length tm.attr_families <> Array.length ts.Schema.attrs then
        invalid_arg "Model.create: attr family count mismatch";
      if Array.length tm.join_families <> Array.length ts.Schema.fks then
        invalid_arg "Model.create: join family count mismatch";
      let check_family ~child_card fam =
        let ids = Array.map (Scope.local_id s) fam.parents in
        if ids <> Cpd.parents fam.cpd then
          invalid_arg "Model.create: CPD parent ids disagree with family parents";
        Array.iteri
          (fun i id ->
            if i > 0 && ids.(i - 1) >= id then
              invalid_arg "Model.create: family parents not in local-id order";
            ignore (Scope.card s id))
          ids;
        if Cpd.child_card fam.cpd <> child_card then
          invalid_arg "Model.create: CPD child arity mismatch"
      in
      Array.iteri
        (fun a fam -> check_family ~child_card:(Scope.card s a) fam)
        tm.attr_families;
      Array.iter (fun fam -> check_family ~child_card:2 fam) tm.join_families)
    tables;
  { schema; tables }

let scope t ti = Scope.of_table t.schema ti

let fingerprint t =
  let buf = Buffer.create 256 in
  let add = Buffer.add_string buf in
  let addi i =
    add (string_of_int i);
    Buffer.add_char buf ' '
  in
  Array.iter
    (fun ts ->
      add ts.Schema.tname;
      add "(";
      Array.iter
        (fun a ->
          add a.Schema.aname;
          add ":";
          addi (Value.card a.Schema.domain))
        ts.Schema.attrs;
      Array.iter
        (fun f ->
          add f.Schema.fkname;
          add ">";
          add f.Schema.target;
          add " ")
        ts.Schema.fks;
      add ")")
    (Schema.tables t.schema);
  Array.iter
    (fun tm ->
      let add_family fam =
        add "[";
        Array.iter
          (function
            | Own a ->
              add "o";
              addi a
            | Foreign (f, b) ->
              add "f";
              addi f;
              addi b)
          fam.parents;
        addi (Cpd.child_card fam.cpd);
        add "]"
      in
      add "T{";
      Array.iter add_family tm.attr_families;
      add "|";
      Array.iter add_family tm.join_families;
      add "}")
    t.tables;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let size_bytes t =
  let acc = ref 0 in
  Array.iter
    (fun tm ->
      Array.iter (fun f -> acc := !acc + Cpd.size_bytes f.cpd) tm.attr_families;
      Array.iter (fun f -> acc := !acc + Cpd.size_bytes f.cpd) tm.join_families;
      acc :=
        !acc
        + Bytesize.values (Array.length tm.attr_families + Array.length tm.join_families))
    t.tables;
  !acc

let n_cross_edges t =
  let acc = ref 0 in
  Array.iter
    (fun tm ->
      Array.iter
        (fun f ->
          Array.iter (function Foreign _ -> incr acc | Own _ -> ()) f.parents)
        tm.attr_families)
    t.tables;
  !acc

let n_join_parents t =
  let acc = ref 0 in
  Array.iter
    (fun tm ->
      Array.iter (fun f -> acc := !acc + Array.length f.parents) tm.join_families)
    t.tables;
  !acc

let pp ppf t =
  let schema_tables = Schema.tables t.schema in
  Format.fprintf ppf "PRM (%d bytes)@." (size_bytes t);
  Array.iteri
    (fun ti tm ->
      let s = Scope.of_table t.schema ti in
      let ts = schema_tables.(ti) in
      Format.fprintf ppf "table %s:@." ts.Schema.tname;
      Array.iteri
        (fun a fam ->
          let parents =
            Array.to_list
              (Array.map (fun p -> Scope.name s (Scope.local_id s p)) fam.parents)
          in
          Format.fprintf ppf "  %s <- {%s} (%d params)@." (Scope.name s a)
            (String.concat ", " parents)
            (Cpd.n_params fam.cpd))
        tm.attr_families;
      Array.iteri
        (fun f fam ->
          let parents =
            Array.to_list
              (Array.map (fun p -> Scope.name s (Scope.local_id s p)) fam.parents)
          in
          Format.fprintf ppf "  J_%s <- {%s} (%d params)@."
            ts.Schema.fks.(f).Schema.fkname
            (String.concat ", " parents)
            (Cpd.n_params fam.cpd))
        tm.join_families)
    t.tables
