(** Sufficient statistics for PRM fitting (Sec. 4.2).

    Everything reduces to linear scans thanks to referential integrity:

    {ul
    {- {e Extended data}: each table's columns augmented with the
       attributes of every foreign-key target, resolved per row (each child
       row joins exactly one target row).  Cross-table attribute families
       fit on this view with the ordinary {!Selest_bn} machinery, and its
       column order realizes {!Model.Scope}'s local-id space.}
    {- {e Join-indicator statistics}: for [P(J_F | B, C)] with [B] child-
       side and [C] target-side attribute sets, the positives per
       configuration come from the extended view, while the totals are the
       product [cnt_R(b) * cnt_S(c)] — no R×S materialization (the paper's
       counting trick).}} *)

val extended_data : Selest_db.Database.t -> int -> Selest_bn.Data.t
(** [extended_data db ti]: the extended view of table [ti] (by schema
    index).  Column [k] is local id [k] of [Model.Scope]. *)

type join_stats = {
  cpd : Selest_bn.Cpd.t;
      (** table CPD over the parents' local ids, child card 2 (index 1 =
          "joins") *)
  loglik : float;
      (** log-likelihood (bits) of all |R|·|S| pair outcomes under the CPD *)
  params : int;
  bytes : int;
}

val fit_join :
  ?counts:Selest_prob.Counts.t ->
  Selest_db.Database.t -> table:int -> fk:int -> parents:Model.parent array ->
  join_stats
(** Fit the join indicator of foreign key [fk] of table [table] with the
    given parents (which must be sorted by local id).  With no parents this
    is the uniform-join model: [P(J) = 1/|S|].

    The positives, own-side and target-side statistics are gathered in one
    fused pass over the child table (plus one over the target) through a
    {!Selest_prob.Counts} kernel; pass [counts] to share key columns and
    count vectors across fits — structure search reuses them across
    candidate families that differ in one parent.  Without [counts] a
    private kernel lives for just this call.  Results are bit-identical
    either way. *)

val join_loglik_under :
  ?counts:Selest_prob.Counts.t ->
  Selest_db.Database.t -> table:int -> fk:int -> Selest_bn.Cpd.t -> float
(** Pair-space log-likelihood of the current data under an {e existing}
    join-indicator CPD (whose parents are read off the CPD) — used by
    incremental maintenance to measure parameter staleness. *)
