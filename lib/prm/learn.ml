open Selest_util
open Selest_db
open Selest_bn

let log_src = Logs.Src.create "selest.prm.learn" ~doc:"PRM structure search"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  kind : Cpd.kind;
  budget_bytes : int;
  max_parents : int;
  rule : Selest_bn.Learn.rule;
  allow_cross_table : bool;
  allow_join_parents : bool;
  random_restarts : int;
  random_walk_length : int;
  seed : int;
  workers : int;
}

let default_config ~budget_bytes =
  {
    kind = Cpd.Trees;
    budget_bytes;
    max_parents = 3;
    rule = Selest_bn.Learn.Ssn;
    allow_cross_table = true;
    allow_join_parents = true;
    random_restarts = 1;
    random_walk_length = 3;
    seed = 0;
    workers = 1;
  }

let bn_uj_config ~budget_bytes =
  { (default_config ~budget_bytes) with allow_cross_table = false; allow_join_parents = false }

type result = {
  model : Model.t;
  loglik : float;
  bytes : int;
  iterations : int;
  trajectory : string list;
}

(* ---- search state ------------------------------------------------------ *)

(* Either kind of family carries (loglik, bytes, params, cpd). *)
type fam = {
  f_parents : Model.parent array;  (* sorted by local id *)
  f_loglik : float;
  f_bytes : int;
  f_params : int;
  f_cpd : Cpd.t;
}

type state = {
  cfg : config;
  db : Database.t;
  schema : Schema.t;
  scopes : Model.Scope.s array;
  ext_data : Data.t array;  (* per table *)
  caches : Score.cache array;  (* per table, over extended data *)
  join_cache : (int * int * Model.parent list, Suffstats.join_stats) Hashtbl.t;
  join_mutex : Mutex.t;  (* guards join_cache (and its counters) under parallel scoring *)
  join_hits : int ref;  (* suffstat reuses served from join_cache *)
  join_misses : int ref;  (* join suffstat fits computed from the data *)
  counts : Selest_prob.Counts.t option;  (* shared count kernel for join fits *)
  pool : Pool.t option;  (* scoring pool; None = sequential *)
  (* current structure: chosen family per attribute and per join indicator *)
  attr_fams : fam array array;
  join_fams : fam array array;
  mutable size : int;
}

let parent_local st ti p = Model.Scope.local_id st.scopes.(ti) p

let sort_parents st ti parents =
  let ps = Array.copy parents in
  Array.sort (fun a b -> compare (parent_local st ti a) (parent_local st ti b)) ps;
  ps

let attr_family ?max_params st ti attr parents =
  let sorted = sort_parents st ti parents in
  let local = Array.map (parent_local st ti) sorted in
  let f = Score.family ?max_params st.caches.(ti) ~child:attr ~parents:local in
  {
    f_parents = sorted;
    f_loglik = f.Score.loglik;
    f_bytes = f.Score.bytes;
    f_params = f.Score.params;
    f_cpd = f.Score.cpd;
  }

(* Cap-constrained refit for a cached move whose base fit busts the
   current headroom; [parents] must already be sorted by local id. *)
let attr_family_capped st ti attr parents ~cap =
  let local = Array.map (parent_local st ti) parents in
  let f = Score.family_capped st.caches.(ti) ~child:attr ~parents:local ~cap in
  {
    f_parents = parents;
    f_loglik = f.Score.loglik;
    f_bytes = f.Score.bytes;
    f_params = f.Score.params;
    f_cpd = f.Score.cpd;
  }

let join_family st ti fk parents =
  let sorted = sort_parents st ti parents in
  let key = (ti, fk, Array.to_list sorted) in
  let find () =
    Mutex.lock st.join_mutex;
    let r = Hashtbl.find_opt st.join_cache key in
    (match r with
    | Some _ -> incr st.join_hits
    | None -> incr st.join_misses);
    Mutex.unlock st.join_mutex;
    r
  in
  let js =
    match find () with
    | Some js -> js
    | None -> (
      (* fit outside the lock; adopt a racing domain's entry if it won *)
      let js =
        Suffstats.fit_join ?counts:st.counts st.db ~table:ti ~fk ~parents:sorted
      in
      Mutex.lock st.join_mutex;
      let r =
        match Hashtbl.find_opt st.join_cache key with
        | Some existing -> existing
        | None ->
          Hashtbl.add st.join_cache key js;
          js
      in
      Mutex.unlock st.join_mutex;
      r)
  in
  {
    f_parents = sorted;
    f_loglik = js.Suffstats.loglik;
    f_bytes = js.Suffstats.bytes;
    f_params = js.Suffstats.params;
    f_cpd = js.Suffstats.cpd;
  }

let structure st =
  {
    Stratify.attr_parents = Array.map (Array.map (fun f -> f.f_parents)) st.attr_fams;
    join_parents = Array.map (Array.map (fun f -> f.f_parents)) st.join_fams;
  }

let total_bytes st =
  let acc = ref 0 in
  Array.iteri
    (fun ti per_attr ->
      Array.iter (fun f -> acc := !acc + f.f_bytes) per_attr;
      Array.iter (fun f -> acc := !acc + f.f_bytes) st.join_fams.(ti);
      acc :=
        !acc + Bytesize.values (Array.length per_attr + Array.length st.join_fams.(ti)))
    st.attr_fams;
  !acc

let total_loglik st =
  let acc = ref 0.0 in
  Array.iteri
    (fun ti per_attr ->
      Array.iter (fun f -> acc := !acc +. f.f_loglik) per_attr;
      Array.iter (fun f -> acc := !acc +. f.f_loglik) st.join_fams.(ti))
    st.attr_fams;
  !acc

(* ---- moves ------------------------------------------------------------- *)

type move =
  | Attr_add of int * int * Model.parent
  | Attr_remove of int * int * Model.parent
  | Join_add of int * int * Model.parent
  | Join_remove of int * int * Model.parent

let has_parent parents p = Array.exists (fun q -> q = p) parents

let with_parent parents p = Array.append parents [| p |]

let without_parent parents p =
  Array.of_list (List.filter (fun q -> q <> p) (Array.to_list parents))

(* Structure legality with one family's parents swapped out — the naive
   reference check: copies the whole structure and revalidates it from
   scratch.  The incremental climber answers the same question through
   {!Depgraph}. *)
let legal_with st ~kind ~ti ~idx ~parents =
  let s = structure st in
  (match kind with
  | `Attr -> s.Stratify.attr_parents.(ti).(idx) <- parents
  | `Join -> s.Stratify.join_parents.(ti).(idx) <- parents);
  Stratify.is_legal st.schema s

(* The potential add-parents of an attribute, in enumeration order: own
   attributes first, then the targets of each foreign key.  Static over
   the whole search. *)
let potential_attr_parents st ti a =
  let ts = (Schema.tables st.schema).(ti) in
  let n_attrs = Array.length ts.Schema.attrs in
  let own = List.init n_attrs (fun b -> Model.Own b) in
  let own = List.filter (fun p -> p <> Model.Own a) own in
  let cross =
    if not st.cfg.allow_cross_table then []
    else
      List.concat
        (List.mapi
           (fun f fk ->
             let target = Schema.find_table st.schema fk.Schema.target in
             List.init (Array.length target.Schema.attrs) (fun b ->
                 Model.Foreign (f, b)))
           (Array.to_list ts.Schema.fks))
  in
  own @ cross

(* Same for a join indicator: own attributes, then the fk's target. *)
let potential_join_parents st ti fk =
  let ts = (Schema.tables st.schema).(ti) in
  let target = Schema.find_table st.schema ts.Schema.fks.(fk).Schema.target in
  List.init (Array.length ts.Schema.attrs) (fun a -> Model.Own a)
  @ List.init (Array.length target.Schema.attrs) (fun b -> Model.Foreign (fk, b))

(* Candidate moves that respect parent bounds and structure legality.
   [add_legal] decides legality of a prospective add; the returned list's
   order is part of the search contract (best-move ties keep the earliest
   scored move), so the incremental generator reproduces it exactly. *)
let candidate_moves_with st ~attr_add_legal ~join_add_legal =
  let cfg = st.cfg in
  let tables = Schema.tables st.schema in
  let out = ref [] in
  Array.iteri
    (fun ti ts ->
      let n_attrs = Array.length ts.Schema.attrs in
      for a = 0 to n_attrs - 1 do
        let current = st.attr_fams.(ti).(a).f_parents in
        Array.iter (fun p -> out := Attr_remove (ti, a, p) :: !out) current;
        if Array.length current < cfg.max_parents then
          List.iter
            (fun p ->
              if (not (has_parent current p)) && attr_add_legal ~ti ~a ~current p
              then out := Attr_add (ti, a, p) :: !out)
            (potential_attr_parents st ti a)
      done;
      if cfg.allow_join_parents then
        Array.iteri
          (fun fk _ ->
            let current = st.join_fams.(ti).(fk).f_parents in
            Array.iter (fun p -> out := Join_remove (ti, fk, p) :: !out) current;
            if Array.length current < cfg.max_parents then
              List.iter
                (fun p ->
                  if (not (has_parent current p)) && join_add_legal ~ti ~fk ~current p
                  then out := Join_add (ti, fk, p) :: !out)
                (potential_join_parents st ti fk))
          ts.Schema.fks)
    tables;
  !out

let candidate_moves st =
  candidate_moves_with st
    ~attr_add_legal:(fun ~ti ~a ~current p ->
      legal_with st ~kind:`Attr ~ti ~idx:a ~parents:(with_parent current p))
    ~join_add_legal:(fun ~ti ~fk ~current p ->
      legal_with st ~kind:`Join ~ti ~idx:fk ~parents:(with_parent current p))

(* Size guard for dense families, mirroring Selest_bn.Learn. *)
let dense_family_bytes st ti ~child_card parents =
  let configs =
    Array.fold_left
      (fun acc p ->
        let c = Model.Scope.card st.scopes.(ti) (parent_local st ti p) in
        if acc > (max_int / 8) / c then max_int / 8 else acc * c)
      1 parents
  in
  Bytesize.params (configs * (child_card - 1)) + Bytesize.values (Array.length parents)

let finish st ~old_f ~new_f =
  let dbytes = new_f.f_bytes - old_f.f_bytes in
  if st.size + dbytes > st.cfg.budget_bytes then None
  else Some (new_f, new_f.f_loglik -. old_f.f_loglik, dbytes, new_f.f_params - old_f.f_params)

(* Evaluate: the replacement family and its deltas; None if infeasible. *)
let evaluate st move =
  match move with
  | Attr_add (ti, a, p) | Attr_remove (ti, a, p) ->
    let old_f = st.attr_fams.(ti).(a) in
    let proposed =
      match move with
      | Attr_add _ -> with_parent old_f.f_parents p
      | _ -> without_parent old_f.f_parents p
    in
    let child_card = Model.Scope.card st.scopes.(ti) a in
    let headroom =
      st.cfg.budget_bytes - st.size + old_f.f_bytes
      - Bytesize.values (Array.length proposed)
    in
    let max_params = headroom / Bytesize.per_param in
    if max_params < 1 then None
    else begin
      let upper_ok =
        match st.cfg.kind with
        | Cpd.Tables ->
          st.size - old_f.f_bytes + dense_family_bytes st ti ~child_card proposed
          <= st.cfg.budget_bytes
        | Cpd.Trees -> true
      in
      if not upper_ok then None
      else finish st ~old_f ~new_f:(attr_family ~max_params st ti a proposed)
    end
  | Join_add (ti, fk, p) | Join_remove (ti, fk, p) ->
    let old_f = st.join_fams.(ti).(fk) in
    let proposed =
      match move with
      | Join_add _ -> with_parent old_f.f_parents p
      | _ -> without_parent old_f.f_parents p
    in
    (* Join CPDs are always dense over their parents: guard size first. *)
    if
      st.size - old_f.f_bytes + dense_family_bytes st ti ~child_card:2 proposed
      > st.cfg.budget_bytes
    then None
    else finish st ~old_f ~new_f:(join_family st ti fk proposed)

let criterion cfg ~mdl_penalty (dscore, dbytes, dparams) =
  match cfg.rule with
  | Selest_bn.Learn.Naive -> dscore
  | Selest_bn.Learn.Ssn ->
    if dbytes > 0 then dscore /. float_of_int dbytes
    else if dscore > 0.0 then Float.infinity
    else dscore
  | Selest_bn.Learn.Mdl -> dscore -. (mdl_penalty *. float_of_int dparams)

let eps = 1e-6

let accept st move new_f dbytes =
  (match move with
  | Attr_add (ti, a, _) | Attr_remove (ti, a, _) -> st.attr_fams.(ti).(a) <- new_f
  | Join_add (ti, fk, _) | Join_remove (ti, fk, _) -> st.join_fams.(ti).(fk) <- new_f);
  st.size <- st.size + dbytes

(* Score every candidate move; with a pool the (pure, cache-backed)
   evaluations fan out across domains.  Results come back in move order
   either way, so the subsequent best-move fold — and hence the whole
   search trajectory — is independent of the worker count. *)
let score_moves st moves =
  match st.pool with
  | Some pool -> Pool.map pool (fun move -> (move, evaluate st move)) moves
  | None -> List.map (fun move -> (move, evaluate st move)) moves

let describe_parent = function
  | Model.Own a -> Printf.sprintf "own%d" a
  | Model.Foreign (f, b) -> Printf.sprintf "fk%d.%d" f b

let describe_move = function
  | Attr_add (ti, a, p) -> Printf.sprintf "attr_add:%d.%d<-%s" ti a (describe_parent p)
  | Attr_remove (ti, a, p) ->
    Printf.sprintf "attr_remove:%d.%d<-%s" ti a (describe_parent p)
  | Join_add (ti, fk, p) -> Printf.sprintf "join_add:%d.%d<-%s" ti fk (describe_parent p)
  | Join_remove (ti, fk, p) ->
    Printf.sprintf "join_remove:%d.%d<-%s" ti fk (describe_parent p)

(* ---- incremental scorer ------------------------------------------------ *)

(* The delta move cache.  One entry per candidate move of a family,
   keeping everything about the move that does not depend on the global
   model size: the proposed (sorted) parent set, the dense-size upper
   bound, and — once fitted — the unconstrained base family.  Per
   iteration only the budget arithmetic is redone; the family is refit
   solely when tree CPDs must honour a cap the base fit busts (exactly
   when the naive climber would refit, so the trajectory is unchanged).
   Entries die when their family changes: an accepted move resets that
   family's table and nothing else. *)
type centry = {
  ce_proposed : Model.parent array;  (* sorted by local id *)
  ce_dense : int;  (* dense_family_bytes of the proposed family *)
  mutable ce_base : fam option;  (* unconstrained fit, filled on demand *)
}

type incr = {
  dep : Depgraph.t;
  attr_mc : (Model.parent * bool, centry) Hashtbl.t array array;
  join_mc : (Model.parent * bool, centry) Hashtbl.t array array;
}

let make_incr st =
  let dep = Depgraph.create st.schema in
  Depgraph.reset dep (structure st);
  {
    dep;
    attr_mc =
      Array.map (fun per -> Array.map (fun _ -> Hashtbl.create 16) per) st.attr_fams;
    join_mc =
      Array.map (fun per -> Array.map (fun _ -> Hashtbl.create 16) per) st.join_fams;
  }

(* Scoring splits in three: a sequential staging pass that answers every
   move from its cache entry or emits a fit thunk; the thunks (the only
   expensive part, all hitting mutex-guarded caches) run through the pool
   when one exists; a sequential merge fills fresh base fits into the
   cache and applies the budget check.  Results stay in move order, so
   the trajectory matches the naive scorer for any worker count. *)
type staged =
  | Ready of (fam * float * int * int) option
  | Fit of centry * fam * (unit -> fam option * fam)

let attr_entry incr st ti a p ~is_add =
  let mc = incr.attr_mc.(ti).(a) in
  match Hashtbl.find_opt mc (p, is_add) with
  | Some e -> e
  | None ->
    let old_f = st.attr_fams.(ti).(a) in
    let proposed =
      if is_add then with_parent old_f.f_parents p else without_parent old_f.f_parents p
    in
    let proposed = sort_parents st ti proposed in
    let child_card = Model.Scope.card st.scopes.(ti) a in
    let e =
      {
        ce_proposed = proposed;
        ce_dense = dense_family_bytes st ti ~child_card proposed;
        ce_base = None;
      }
    in
    Hashtbl.add mc (p, is_add) e;
    e

let join_entry incr st ti fk p ~is_add =
  let mc = incr.join_mc.(ti).(fk) in
  match Hashtbl.find_opt mc (p, is_add) with
  | Some e -> e
  | None ->
    let old_f = st.join_fams.(ti).(fk) in
    let proposed =
      if is_add then with_parent old_f.f_parents p else without_parent old_f.f_parents p
    in
    let proposed = sort_parents st ti proposed in
    let e =
      {
        ce_proposed = proposed;
        ce_dense = dense_family_bytes st ti ~child_card:2 proposed;
        ce_base = None;
      }
    in
    Hashtbl.add mc (p, is_add) e;
    e

let stage_move incr st move =
  match move with
  | Attr_add (ti, a, p) | Attr_remove (ti, a, p) ->
    let is_add = match move with Attr_add _ -> true | _ -> false in
    let old_f = st.attr_fams.(ti).(a) in
    let e = attr_entry incr st ti a p ~is_add in
    let headroom =
      st.cfg.budget_bytes - st.size + old_f.f_bytes
      - Bytesize.values (Array.length e.ce_proposed)
    in
    let max_params = headroom / Bytesize.per_param in
    if max_params < 1 then Ready None
    else if
      st.cfg.kind = Cpd.Tables
      && st.size - old_f.f_bytes + e.ce_dense > st.cfg.budget_bytes
    then Ready None
    else begin
      match e.ce_base with
      | Some base when st.cfg.kind = Cpd.Tables || base.f_params <= max_params ->
        Ready (finish st ~old_f ~new_f:base)
      | Some _ ->
        Fit
          ( e,
            old_f,
            fun () -> (None, attr_family_capped st ti a e.ce_proposed ~cap:max_params) )
      | None ->
        Fit
          ( e,
            old_f,
            fun () ->
              let base = attr_family st ti a e.ce_proposed in
              let new_f =
                if st.cfg.kind = Cpd.Trees && base.f_params > max_params then
                  attr_family_capped st ti a e.ce_proposed ~cap:max_params
                else base
              in
              (Some base, new_f) )
    end
  | Join_add (ti, fk, p) | Join_remove (ti, fk, p) ->
    let is_add = match move with Join_add _ -> true | _ -> false in
    let old_f = st.join_fams.(ti).(fk) in
    let e = join_entry incr st ti fk p ~is_add in
    if st.size - old_f.f_bytes + e.ce_dense > st.cfg.budget_bytes then Ready None
    else begin
      match e.ce_base with
      | Some base -> Ready (finish st ~old_f ~new_f:base)
      | None ->
        Fit
          ( e,
            old_f,
            fun () ->
              let f = join_family st ti fk e.ce_proposed in
              (Some f, f) )
    end

let incr_score incr st =
  let moves =
    candidate_moves_with st
      ~attr_add_legal:(fun ~ti ~a ~current:_ p -> Depgraph.attr_add_legal incr.dep ~ti ~a p)
      ~join_add_legal:(fun ~ti ~fk ~current:_ p ->
        Depgraph.join_add_legal incr.dep ~ti ~fk p)
  in
  let staged = List.map (fun move -> (move, stage_move incr st move)) moves in
  let thunks =
    List.filter_map (function _, Fit (_, _, th) -> Some th | _ -> None) staged
  in
  let fitted =
    match st.pool with
    | Some pool when thunks <> [] -> Pool.run pool thunks
    | _ -> List.map (fun th -> th ()) thunks
  in
  let rec merge staged fitted acc =
    match staged with
    | [] -> List.rev acc
    | (move, Ready ev) :: rest -> merge rest fitted ((move, ev) :: acc)
    | (move, Fit (e, old_f, _)) :: rest -> (
      match fitted with
      | (base_opt, new_f) :: more ->
        (match base_opt with
        | Some base when e.ce_base = None -> e.ce_base <- Some base
        | _ -> ());
        merge rest more ((move, finish st ~old_f ~new_f) :: acc)
      | [] -> assert false)
  in
  merge staged fitted []

let incr_accept incr st move new_f dbytes =
  accept st move new_f dbytes;
  match move with
  | Attr_add (ti, a, p) ->
    Hashtbl.reset incr.attr_mc.(ti).(a);
    Depgraph.add_attr_parent incr.dep ~ti ~a p
  | Attr_remove (ti, a, p) ->
    Hashtbl.reset incr.attr_mc.(ti).(a);
    Depgraph.remove_attr_parent incr.dep ~ti ~a p
  | Join_add (ti, fk, p) ->
    Hashtbl.reset incr.join_mc.(ti).(fk);
    Depgraph.add_join_parent incr.dep ~ti ~fk p
  | Join_remove (ti, fk, p) ->
    Hashtbl.reset incr.join_mc.(ti).(fk);
    Depgraph.remove_join_parent incr.dep ~ti ~fk p

(* After a snapshot restore every family may have changed at once: drop
   all move-cache entries and rebuild the legality oracle from the
   restored structure. *)
let incr_restore incr st =
  Array.iter (Array.iter Hashtbl.reset) incr.attr_mc;
  Array.iter (Array.iter Hashtbl.reset) incr.join_mc;
  Depgraph.reset incr.dep (structure st)

(* ---- search driver ----------------------------------------------------- *)

(* One interface for both climbers: the naive scorer re-enumerates and
   re-evaluates everything (the reference trajectory oracle), the
   incremental one answers from its caches.  Everything downstream of
   [sc_score] — the best-move fold, acceptance, restarts, snapshots — is
   shared, so the two can only differ through the scored lists
   themselves. *)
type scorer = {
  sc_score : unit -> (move * (fam * float * int * int) option) list;
  sc_accept : move -> fam -> int -> unit;
  sc_restore : unit -> unit;  (* run after a snapshot restore *)
}

let naive_scorer st =
  {
    sc_score = (fun () -> score_moves st (candidate_moves st));
    sc_accept = accept st;
    sc_restore = ignore;
  }

let incr_scorer st =
  let incr = make_incr st in
  {
    sc_score = (fun () -> incr_score incr st);
    sc_accept = incr_accept incr st;
    sc_restore = (fun () -> incr_restore incr st);
  }

let climb st sc ~mdl_penalty trail =
  let taken = ref 0 in
  let continue = ref true in
  while !continue do
    Selest_obs.Span.with_ "learn.iter" (fun sp ->
        let scored = sc.sc_score () in
        let best = ref None in
        List.iter
          (fun (move, evaluation) ->
            match evaluation with
            | None -> ()
            | Some (new_f, dscore, dbytes, dparams) ->
              let value = criterion st.cfg ~mdl_penalty (dscore, dbytes, dparams) in
              if value > eps then begin
                match !best with
                | Some (v0, ds0, _, _, _) when v0 > value || (v0 = value && ds0 >= dscore) -> ()
                | _ -> best := Some (value, dscore, dbytes, new_f, move)
              end)
          scored;
        (match !best with
        | None -> continue := false
        | Some (_, _, dbytes, new_f, move) ->
          sc.sc_accept move new_f dbytes;
          trail := describe_move move :: !trail;
          incr taken;
          if Selest_obs.Span.enabled () then
            Selest_obs.Span.add sp "accepted" (describe_move move));
        if Selest_obs.Span.enabled () then begin
          Selest_obs.Span.add sp "moves_scored"
            (string_of_int (List.length scored));
          Selest_obs.Span.add sp "budget_used" (string_of_int st.size);
          Selest_obs.Span.add sp "suffstat_hits" (string_of_int !(st.join_hits));
          Selest_obs.Span.add sp "suffstat_misses"
            (string_of_int !(st.join_misses))
        end)
  done;
  !taken

let random_walk st sc rng trail =
  for _ = 1 to st.cfg.random_walk_length do
    let feasible =
      List.filter_map
        (fun (move, evaluation) ->
          match evaluation with
          | Some (new_f, _, dbytes, _) -> Some (move, new_f, dbytes)
          | None -> None)
        (sc.sc_score ())
    in
    if feasible <> [] then begin
      let move, new_f, dbytes = List.nth feasible (Rng.int rng (List.length feasible)) in
      sc.sc_accept move new_f dbytes;
      trail := describe_move move :: !trail
    end
  done

let snapshot st =
  (Array.map Array.copy st.attr_fams, Array.map Array.copy st.join_fams, st.size)

let restore st (af, jf, size) =
  Array.iteri (fun ti per -> Array.iteri (fun a f -> st.attr_fams.(ti).(a) <- f) per) af;
  Array.iteri (fun ti per -> Array.iteri (fun fk f -> st.join_fams.(ti).(fk) <- f) per) jf;
  st.size <- size

let to_model st =
  let tables =
    Array.mapi
      (fun ti per_attr ->
        let attr_families =
          Array.map (fun f -> { Model.parents = f.f_parents; cpd = f.f_cpd }) per_attr
        in
        let join_families =
          Array.map
            (fun f -> { Model.parents = f.f_parents; cpd = f.f_cpd })
            st.join_fams.(ti)
        in
        { Model.attr_families; join_families })
      st.attr_fams
  in
  Model.create st.schema tables

let learn_with ~make_scorer ~counts ~config:cfg db =
  let schema = Database.schema db in
  let n_tables = Schema.n_tables schema in
  let scopes = Array.init n_tables (fun ti -> Model.Scope.of_table schema ti) in
  let ext_data = Array.init n_tables (fun ti -> Suffstats.extended_data db ti) in
  (* Extended-data fits register in the shared kernel under table ids
     disjoint from the raw schema ids the join statistics use. *)
  let caches =
    Array.mapi
      (fun ti d ->
        let counts = Option.map (fun k -> (k, n_tables + ti)) counts in
        Score.create_cache ~kind:cfg.kind ?counts d)
      ext_data
  in
  (* Workers beyond the host's spare cores only add scheduling overhead;
     the trajectory is worker-count-independent, so clamping is safe. *)
  let workers = min cfg.workers (Pool.default_size ()) in
  let pool = if workers > 1 then Some (Pool.create ~size:workers ()) else None in
  let st =
    {
      cfg;
      db;
      schema;
      scopes;
      ext_data;
      caches;
      join_cache = Hashtbl.create 64;
      join_mutex = Mutex.create ();
      join_hits = ref 0;
      join_misses = ref 0;
      counts;
      pool;
      attr_fams = [||];
      join_fams = [||];
      size = 0;
    }
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      let st =
        {
          st with
          attr_fams =
            Array.mapi
              (fun ti ts ->
                Array.init (Array.length ts.Schema.attrs) (fun a ->
                    attr_family st ti a [||]))
              (Schema.tables schema);
          join_fams =
            Array.mapi
              (fun ti ts ->
                Array.init (Array.length ts.Schema.fks) (fun fk ->
                    join_family st ti fk [||]))
              (Schema.tables schema);
        }
      in
      st.size <- total_bytes st;
      if st.size > cfg.budget_bytes then
        invalid_arg
          (Printf.sprintf
             "Prm.Learn: budget %dB cannot hold the empty model (%dB of marginals)"
             cfg.budget_bytes st.size);
      (* MDL penalty: dominated by the largest sample space in the model. *)
      let max_weight =
        Array.fold_left (fun acc d -> Float.max acc (Data.total_weight d)) 2.0 ext_data
      in
      let mdl_penalty = Arrayx.log2 max_weight /. 2.0 in
      let sc = make_scorer st in
      let rng = Rng.create cfg.seed in
      let iterations = ref 0 in
      let trail = ref [] in
      let best =
        Selest_obs.Span.with_
          ~attrs:[ ("budget_bytes", string_of_int cfg.budget_bytes) ]
          "prm.learn"
          (fun sp ->
            iterations := climb st sc ~mdl_penalty trail;
            let best = ref (snapshot st, total_loglik st) in
            for _ = 1 to cfg.random_restarts do
              random_walk st sc rng trail;
              iterations := !iterations + climb st sc ~mdl_penalty trail;
              let ll = total_loglik st in
              if ll > snd !best then best := (snapshot st, ll)
            done;
            if Selest_obs.Span.enabled () then begin
              Selest_obs.Span.add sp "iterations" (string_of_int !iterations);
              Selest_obs.Span.add sp "bytes" (string_of_int st.size)
            end;
            !best)
      in
      let best = ref best in
      restore st (fst !best);
      sc.sc_restore ();
      let model = to_model st in
      Log.info (fun m ->
          m "learned PRM: %dB of %dB budget, %d cross edges, %d join parents, %d moves"
            st.size cfg.budget_bytes (Model.n_cross_edges model)
            (Model.n_join_parents model) !iterations);
      {
        model;
        loglik = snd !best;
        bytes = st.size;
        iterations = !iterations;
        trajectory = List.rev !trail;
      })

let learn ~config db =
  learn_with ~make_scorer:incr_scorer
    ~counts:(Some (Selest_prob.Counts.create ()))
    ~config db

let learn_reference ~config db =
  learn_with ~make_scorer:naive_scorer ~counts:None ~config db

let learn_prm ?(budget_bytes = 8192) ?(seed = 0) db =
  let cfg = { (default_config ~budget_bytes) with seed } in
  (learn ~config:cfg db).model
