(* Incremental legality oracle mirroring Stratify.check.  See the mli for
   the contract; the key invariant is that the tracked graphs are always
   those of a legal (acyclic, stratified) structure, so candidate adds
   reduce to reachability queries on a cached closure. *)

open Selest_db

type t = {
  schema : Schema.t;
  offsets : int array;  (* global id of attr (ti, a) is offsets.(ti) + a *)
  join_ids : int array array;  (* join_ids.(ti).(fk): node id of J_{ti,fk} *)
  n_nodes : int;
  n_tables : int;
  edges : (int * int, int) Hashtbl.t;  (* combined-graph edge multiset *)
  table_edges : (int * int, int) Hashtbl.t;  (* table-graph edge multiset *)
  mutable reach : bool array array;  (* reach.(u).(v): u -> ... -> v *)
  mutable table_reach : bool array array;
  mutable dirty : bool;
}

let create schema =
  let tables = Schema.tables schema in
  let n_tables = Array.length tables in
  let offsets = Array.make n_tables 0 in
  let total = ref 0 in
  Array.iteri
    (fun ti ts ->
      offsets.(ti) <- !total;
      total := !total + Array.length ts.Schema.attrs)
    tables;
  let join_ids =
    Array.map
      (fun ts ->
        Array.map
          (fun _ ->
            let id = !total in
            incr total;
            id)
          ts.Schema.fks)
      tables
  in
  {
    schema;
    offsets;
    join_ids;
    n_nodes = !total;
    n_tables;
    edges = Hashtbl.create 64;
    table_edges = Hashtbl.create 16;
    reach = [||];
    table_reach = [||];
    dirty = true;
  }

let resolve t ti p =
  match p with
  | Model.Own a -> (ti, a)
  | Model.Foreign (f, b) ->
    let ts = (Schema.tables t.schema).(ti) in
    (Schema.table_index t.schema ts.Schema.fks.(f).Schema.target, b)

let attr_node t ti a = t.offsets.(ti) + a
let join_node t ti fk = t.join_ids.(ti).(fk)

let bump tbl k d =
  let c = (match Hashtbl.find_opt tbl k with Some c -> c | None -> 0) + d in
  if c <= 0 then Hashtbl.remove tbl k else Hashtbl.replace tbl k c

(* One accepted attr-family move changes exactly these edges: the resolved
   parent edge, the gating edge when the parent is cross-table, and the
   table edge when the parent lives in another table. *)
let attr_parent_delta t ~ti ~a p d =
  let pt, pa = resolve t ti p in
  let v = attr_node t ti a in
  bump t.edges (attr_node t pt pa, v) d;
  (match p with
  | Model.Foreign (f, _) -> bump t.edges (join_node t ti f, v) d
  | Model.Own _ -> ());
  if pt <> ti then bump t.table_edges (pt, ti) d;
  t.dirty <- true

let join_parent_delta t ~ti ~fk p d =
  let pt, pa = resolve t ti p in
  bump t.edges (attr_node t pt pa, join_node t ti fk) d;
  t.dirty <- true

let add_attr_parent t ~ti ~a p = attr_parent_delta t ~ti ~a p 1
let remove_attr_parent t ~ti ~a p = attr_parent_delta t ~ti ~a p (-1)
let add_join_parent t ~ti ~fk p = join_parent_delta t ~ti ~fk p 1
let remove_join_parent t ~ti ~fk p = join_parent_delta t ~ti ~fk p (-1)

let reset t s =
  Hashtbl.reset t.edges;
  Hashtbl.reset t.table_edges;
  t.dirty <- true;
  Array.iteri
    (fun ti per_attr ->
      Array.iteri (fun a ps -> Array.iter (add_attr_parent t ~ti ~a) ps) per_attr)
    s.Stratify.attr_parents;
  Array.iteri
    (fun ti per_fk ->
      Array.iteri (fun fk ps -> Array.iter (add_join_parent t ~ti ~fk) ps) per_fk)
    s.Stratify.join_parents

let closure n edges =
  let succ = Array.make n [] in
  Hashtbl.iter (fun (u, v) c -> if c > 0 then succ.(u) <- v :: succ.(u)) edges;
  let reach = Array.init n (fun _ -> Array.make n false) in
  for u = 0 to n - 1 do
    let row = reach.(u) in
    let rec visit v =
      List.iter
        (fun w ->
          if not row.(w) then begin
            row.(w) <- true;
            visit w
          end)
        succ.(v)
    in
    visit u
  done;
  reach

let refresh t =
  if t.dirty then begin
    t.reach <- closure t.n_nodes t.edges;
    t.table_reach <- closure t.n_tables t.table_edges;
    t.dirty <- false
  end

let attr_add_legal t ~ti ~a p =
  refresh t;
  let pt, pa = resolve t ti p in
  let u = attr_node t pt pa and v = attr_node t ti a in
  (* A simple cycle through the new edges uses exactly one of them (both
     end at [v]), so reachability over the current — acyclic — graph is
     enough: adding u -> v (and the gating J -> v) closes a cycle iff v
     already reaches the new edge's source. *)
  let cycle =
    u = v
    || t.reach.(v).(u)
    || (match p with
       | Model.Foreign (f, _) -> t.reach.(v).(join_node t ti f)
       | Model.Own _ -> false)
  in
  let table_cycle = pt <> ti && t.table_reach.(ti).(pt) in
  not (cycle || table_cycle)

let join_add_legal t ~ti ~fk p =
  refresh t;
  let pt, pa = resolve t ti p in
  not t.reach.(join_node t ti fk).(attr_node t pt pa)
