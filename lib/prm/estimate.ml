open Selest_db
open Selest_bn

(* Internal closure representation: tuple variables with their tables,
   joins as (child_tv, fk index, parent_tv), and the needed (tv, attr)
   set. *)
type closure = {
  c_tvars : (string * int) list;  (* tv -> table index, in insertion order *)
  c_joins : (string * int * string) list;
  c_needed : (string * int) list;  (* needed attribute nodes *)
}

let table_index_of schema name = Schema.table_index schema name

let compute_closure (prm : Model.t) q =
  let schema = prm.Model.schema in
  let tables = Schema.tables schema in
  let tvars = ref (List.map (fun (tv, tbl) -> (tv, table_index_of schema tbl)) q.Query.tvars) in
  let joins =
    ref
      (List.map
         (fun j ->
           let ti = List.assoc j.Query.child_tv !tvars in
           let fk = Schema.fk_index tables.(ti) j.Query.fk in
           (j.Query.child_tv, fk, j.Query.parent_tv))
         q.Query.joins)
  in
  let needed = Hashtbl.create 32 in
  let needed_order = ref [] in
  let worklist = Queue.create () in
  let need tv attr =
    if not (Hashtbl.mem needed (tv, attr)) then begin
      Hashtbl.add needed (tv, attr) ();
      needed_order := (tv, attr) :: !needed_order;
      Queue.add (tv, attr) worklist
    end
  in
  let processed_joins = Hashtbl.create 8 in
  (* Ensure a join (tv, fk) exists, creating a fresh parent tuple variable
     when the query does not already contain one; returns the parent tv and
     registers the join indicator's own parent requirements. *)
  let rec ensure_join tv fk =
    let ti = List.assoc tv !tvars in
    match
      List.find_opt (fun (ctv, f, _) -> ctv = tv && f = fk) !joins
    with
    | Some (_, _, ptv) ->
      require_join_parents tv ti fk ptv;
      ptv
    | None ->
      let fk_schema = tables.(ti).Schema.fks.(fk) in
      let target_ti = table_index_of schema fk_schema.Schema.target in
      let fresh = tv ^ "__" ^ fk_schema.Schema.fkname in
      tvars := !tvars @ [ (fresh, target_ti) ];
      joins := !joins @ [ (tv, fk, fresh) ];
      require_join_parents tv ti fk fresh;
      fresh

  and require_join_parents ctv ti fk ptv =
    if not (Hashtbl.mem processed_joins (ctv, fk)) then begin
      Hashtbl.add processed_joins (ctv, fk) ();
      let jfam = prm.Model.tables.(ti).Model.join_families.(fk) in
      Array.iter
        (fun p ->
          match p with
          | Model.Own a -> need ctv a
          | Model.Foreign (_, b) -> need ptv b)
        jfam.Model.parents
    end
  in
  (* Seeds: selected attributes, plus the indicators of the query's own
     joins (a join with no selects still constrains the result size). *)
  List.iter
    (fun s ->
      let ti = List.assoc s.Query.sel_tv !tvars in
      need s.Query.sel_tv (Schema.attr_index tables.(ti) s.Query.sel_attr))
    q.Query.selects;
  List.iter (fun (ctv, fk, ptv) ->
      let ti = List.assoc ctv !tvars in
      require_join_parents ctv ti fk ptv)
    !joins;
  (* Fixpoint: pull in ancestors, materializing joins for cross-table
     parents. *)
  while not (Queue.is_empty worklist) do
    let tv, attr = Queue.pop worklist in
    let ti = List.assoc tv !tvars in
    let fam = prm.Model.tables.(ti).Model.attr_families.(attr) in
    Array.iter
      (fun p ->
        match p with
        | Model.Own b -> need tv b
        | Model.Foreign (f, b) ->
          let ptv = ensure_join tv f in
          need ptv b)
      fam.Model.parents
  done;
  { c_tvars = !tvars; c_joins = !joins; c_needed = List.rev !needed_order }

let upward_closure prm q =
  let schema = prm.Model.schema in
  let tables = Schema.tables schema in
  let c = compute_closure prm q in
  let tvars =
    List.map (fun (tv, ti) -> (tv, tables.(ti).Schema.tname)) c.c_tvars
  in
  let joins =
    List.map
      (fun (ctv, fk, ptv) ->
        let ti = List.assoc ctv c.c_tvars in
        Query.join ~child:ctv ~fk:tables.(ti).Schema.fks.(fk).Schema.fkname ~parent:ptv)
      c.c_joins
  in
  Query.create ~tvars ~joins ~selects:q.Query.selects ()

let build_network (prm : Model.t) q =
  let schema = prm.Model.schema in
  let tables = Schema.tables schema in
  let c = compute_closure prm q in
  (* Node ids: needed attributes first, then join indicators. *)
  let node_ids = Hashtbl.create 32 in
  let next = ref 0 in
  List.iter
    (fun (tv, attr) ->
      Hashtbl.add node_ids (`Attr (tv, attr)) !next;
      incr next)
    c.c_needed;
  List.iter
    (fun (ctv, fk, _) ->
      Hashtbl.add node_ids (`Join (ctv, fk)) !next;
      incr next)
    c.c_joins;
  let attr_node tv attr =
    match Hashtbl.find_opt node_ids (`Attr (tv, attr)) with
    | Some id -> id
    | None -> invalid_arg "Estimate: closure missed a parent node (internal error)"
  in
  (* Factors. *)
  let factors = ref [] in
  List.iter
    (fun (tv, attr) ->
      let ti = List.assoc tv c.c_tvars in
      let scope = Model.Scope.of_table schema ti in
      let fam = prm.Model.tables.(ti).Model.attr_families.(attr) in
      let parent_of_local = Hashtbl.create 8 in
      Array.iter
        (fun p ->
          let local = Model.Scope.local_id scope p in
          let node =
            match p with
            | Model.Own b -> attr_node tv b
            | Model.Foreign (f, b) ->
              let _, _, ptv =
                List.find (fun (ctv, f', _) -> ctv = tv && f' = f) c.c_joins
              in
              attr_node ptv b
          in
          Hashtbl.add parent_of_local local node)
        fam.Model.parents;
      let var_of local =
        if local = attr then attr_node tv attr
        else Hashtbl.find parent_of_local local
      in
      factors := Cpd.to_factor ~var_of ~child:attr fam.Model.cpd :: !factors)
    c.c_needed;
  List.iter
    (fun (ctv, fk, ptv) ->
      let ti = List.assoc ctv c.c_tvars in
      let scope = Model.Scope.of_table schema ti in
      let jfam = prm.Model.tables.(ti).Model.join_families.(fk) in
      let jid = Model.Scope.join_id scope fk in
      let parent_of_local = Hashtbl.create 8 in
      Array.iter
        (fun p ->
          let local = Model.Scope.local_id scope p in
          let node =
            match p with
            | Model.Own a -> attr_node ctv a
            | Model.Foreign (_, b) -> attr_node ptv b
          in
          Hashtbl.add parent_of_local local node)
        jfam.Model.parents;
      let var_of local =
        if local = jid then Hashtbl.find node_ids (`Join (ctv, fk))
        else Hashtbl.find parent_of_local local
      in
      factors := Cpd.to_factor ~var_of ~child:jid jfam.Model.cpd :: !factors)
    c.c_joins;
  (* Evidence: the selects plus every closure join indicator = true. *)
  let select_evidence =
    List.map
      (fun s ->
        let ti = List.assoc s.Query.sel_tv c.c_tvars in
        let attr = Schema.attr_index tables.(ti) s.Query.sel_attr in
        (attr_node s.Query.sel_tv attr, s.Query.pred))
      q.Query.selects
  in
  let join_evidence =
    List.map
      (fun (ctv, fk, _) -> (Hashtbl.find node_ids (`Join (ctv, fk)), Query.Eq 1))
      c.c_joins
  in
  (c, !factors, select_evidence, join_evidence)

let skeleton_key q =
  let tvars = List.map (fun (tv, tbl) -> tv ^ ":" ^ tbl) q.Query.tvars in
  let joins =
    List.map
      (fun j -> j.Query.child_tv ^ "." ^ j.Query.fk ^ "=" ^ j.Query.parent_tv)
      q.Query.joins
  in
  let sels =
    List.sort_uniq compare
      (List.map (fun s -> s.Query.sel_tv ^ "." ^ s.Query.sel_attr) q.Query.selects)
  in
  String.concat ";" tvars ^ "|" ^ String.concat ";" joins ^ "|" ^ String.concat ";" sels

(* The network's shape is a function of (model structure × query
   skeleton), so this key lets Ve reuse elimination orders across repeated
   query shapes — the common case behind the serving cache. *)
let plan_key_of prm q = Model.fingerprint prm ^ "|" ^ skeleton_key q

let prob prm q =
  let _, factors, select_ev, join_ev = build_network prm q in
  Ve.prob_of_evidence ~plan_key:(plan_key_of prm q) factors (select_ev @ join_ev)

let sizes_of_db db =
  Array.map Table.size (Database.tables db)

let closure_scale sizes c =
  List.fold_left (fun acc (_, ti) -> acc *. float_of_int sizes.(ti)) 1.0 c.c_tvars

let estimate prm ~sizes q =
  Selest_obs.Span.with_ "prm.estimate" (fun sp ->
      let c, factors, select_ev, join_ev =
        Selest_obs.Span.with_ "prm.build" (fun _ -> build_network prm q)
      in
      if Selest_obs.Span.live sp then begin
        Selest_obs.Span.add sp "factors"
          (string_of_int (List.length factors));
        Selest_obs.Span.add sp "tvars"
          (String.concat ";" (List.map fst c.c_tvars))
      end;
      let p =
        Ve.prob_of_evidence ~plan_key:(plan_key_of prm q) factors
          (select_ev @ join_ev)
      in
      p *. closure_scale sizes c)

let query_eval_network prm q =
  let c, factors, select_ev, join_ev = build_network prm q in
  let desc =
    Printf.sprintf "tvars=[%s] joins=%d attrs=%d factors=%d"
      (String.concat ";" (List.map fst c.c_tvars))
      (List.length c.c_joins) (List.length c.c_needed) (List.length factors)
  in
  (desc, factors, select_ev @ join_ev)

(* ---- suite-oriented cached estimator ----------------------------------- *)

(* A query suite asks thousands of equality instantiations over one
   skeleton.  The joint posterior of the selected attributes given the
   join evidence answers every instantiation by table lookup, so cache it
   per (skeleton, selected-attribute-set). *)

type cache_entry = {
  keep : int array;  (* select node ids, sorted *)
  node_of_sel : (string * string, int) Hashtbl.t;  (* (tv, attr) -> node id *)
  posterior : Selest_prob.Factor.t;  (* P(keep | joins) *)
  p_joins : float;
  scale : float;
}

let cached_estimator prm ~sizes =
  let cache : (string, cache_entry) Hashtbl.t = Hashtbl.create 16 in
  let fp = Model.fingerprint prm in
  fun q ->
    let all_eq =
      List.for_all (fun s -> match s.Query.pred with Query.Eq _ -> true | _ -> false)
        q.Query.selects
    in
    if not all_eq then estimate prm ~sizes q
    else begin
      let key = skeleton_key q in
      let entry =
        match Hashtbl.find_opt cache key with
        | Some e -> e
        | None ->
          let c, factors, select_ev, join_ev = build_network prm q in
          let node_of_sel = Hashtbl.create 8 in
          List.iter2
            (fun s (node, _) ->
              Hashtbl.replace node_of_sel (s.Query.sel_tv, s.Query.sel_attr) node)
            q.Query.selects select_ev;
          let keep =
            Array.of_list (List.sort_uniq compare (List.map fst select_ev))
          in
          let plan_key = fp ^ "|" ^ key in
          let posterior = Ve.posterior ~plan_key factors join_ev ~keep in
          let p_joins = Ve.prob_of_evidence ~plan_key factors join_ev in
          let e =
            { keep; node_of_sel; posterior; p_joins; scale = closure_scale sizes c }
          in
          Hashtbl.add cache key e;
          e
      in
      (* Look up the instantiation in the cached posterior. *)
      let values = Array.make (Array.length entry.keep) (-1) in
      List.iter
        (fun s ->
          let node = Hashtbl.find entry.node_of_sel (s.Query.sel_tv, s.Query.sel_attr) in
          let pos = ref 0 in
          while entry.keep.(!pos) <> node do incr pos done;
          match s.Query.pred with
          | Query.Eq v -> values.(!pos) <- v
          | _ -> assert false)
        q.Query.selects;
      let p_sel = Selest_prob.Factor.get entry.posterior values in
      entry.p_joins *. p_sel *. entry.scale
    end

(* ---- non-key equality joins (Sec. 6) ----------------------------------- *)

let estimate_nonkey prm ~sizes (q1, tv1, a1) (q2, tv2, a2) =
  let schema = prm.Model.schema in
  List.iter
    (fun (tv, _) ->
      if List.mem_assoc tv q2.Query.tvars then
        invalid_arg "Estimate.estimate_nonkey: sub-queries share a tuple variable")
    q1.Query.tvars;
  let card_of q tv attr =
    let ts = Schema.find_table schema (Query.table_of q tv) in
    Selest_db.Value.card (Schema.attr ts attr).Schema.domain
  in
  let c1 = card_of q1 tv1 a1 and c2 = card_of q2 tv2 a2 in
  if c1 <> c2 then
    invalid_arg "Estimate.estimate_nonkey: joined attributes disagree on domain";
  let e1 = cached_estimator prm ~sizes and e2 = cached_estimator prm ~sizes in
  let acc = ref 0.0 in
  for v = 0 to c1 - 1 do
    let q1v = Query.with_selects q1 (Query.eq tv1 a1 v :: q1.Query.selects) in
    let q2v = Query.with_selects q2 (Query.eq tv2 a2 v :: q2.Query.selects) in
    acc := !acc +. (e1 q1v *. e2 q2v)
  done;
  !acc

let group_counts prm ~sizes q ~keys =
  let schema = prm.Model.schema in
  (* Seed the network with one dummy equality per key so the closure pulls
     the key attributes (and their ancestors) in; evaluate with only the
     query's own selects plus the join evidence. *)
  let dummy_selects = List.map (fun (tv, attr) -> Query.eq tv attr 0) keys in
  let q_with_keys = Query.with_selects q (q.Query.selects @ dummy_selects) in
  let c, factors, select_ev, join_ev = build_network prm q_with_keys in
  let n_own = List.length q.Query.selects in
  let own_ev = List.filteri (fun i _ -> i < n_own) select_ev in
  let key_nodes =
    List.filteri (fun i _ -> i >= n_own) select_ev |> List.map fst
  in
  let keep = Array.of_list (List.sort_uniq compare key_nodes) in
  if Array.length keep <> List.length keys then
    invalid_arg "Estimate.group_counts: duplicate key attributes";
  let evidence = own_ev @ join_ev in
  let plan_key = plan_key_of prm q_with_keys in
  let posterior = Ve.posterior ~plan_key factors evidence ~keep in
  let p_evidence = Ve.prob_of_evidence ~plan_key factors evidence in
  let scale = closure_scale sizes c *. p_evidence in
  (* Map each key to its position in the (sorted) keep array. *)
  let positions =
    List.map
      (fun node ->
        let rec go i = if keep.(i) = node then i else go (i + 1) in
        go 0)
      key_nodes
  in
  let cards =
    List.map
      (fun (tv, attr) ->
        let ti = Schema.table_index schema (Query.table_of q_with_keys tv) in
        let ts = (Schema.tables schema).(ti) in
        Selest_db.Value.card (Schema.attr ts attr).Schema.domain)
      keys
  in
  let d = List.length keys in
  let cards_arr = Array.of_list cards in
  let positions_arr = Array.of_list positions in
  let out = ref [] in
  let cell = Array.make d 0 in
  let keep_cell = Array.make (Array.length keep) 0 in
  let rec go i =
    if i = d then begin
      Array.iteri (fun j pos -> keep_cell.(pos) <- cell.(j)) positions_arr;
      out := (Array.copy cell, Selest_prob.Factor.get posterior keep_cell *. scale) :: !out
    end
    else
      for v = 0 to cards_arr.(i) - 1 do
        cell.(i) <- v;
        go (i + 1)
      done
  in
  go 0;
  List.rev !out
