(** Incrementally-maintained legality oracle for PRM structure search.

    {!Stratify.check} answers "is this whole structure legal?" by
    rebuilding the combined attribute/join-indicator graph and the
    table-level graph from scratch — O(structure) per query, which the
    naive climber pays once per candidate move per iteration.  This module
    maintains the same two graphs {e alongside} the search state: each
    accepted move updates one edge set in O(1), and candidate adds are
    answered from a cached transitive closure (refreshed lazily after a
    mutation, O(V·E) on graphs with a handful of nodes).

    The semantics mirror {!Stratify.check} exactly:
    {ul
    {- combined graph: attribute parent edges, gating edges [J_F → R.A]
       for every cross-table parent of [R.A] through [F], and explicit
       parent edges into join indicators — an add is illegal iff it closes
       a directed cycle here;}
    {- table graph: an edge [S → R] whenever some attribute of [R] has a
       parent in [S] (join-indicator parents impose no table ordering) —
       a cross-table attribute add is illegal iff it closes a cycle
       here.}}

    Edge multiplicities are tracked so removing one of two parents that
    induce the same edge keeps the edge alive.  Because search states are
    always legal (only legal adds are ever accepted and removes cannot
    create cycles), a query never has to handle an already-cyclic
    graph. *)

type t

val create : Selest_db.Schema.t -> t
(** Oracle for the empty structure (no parents anywhere). *)

val reset : t -> Stratify.structure -> unit
(** Reload the oracle from a full structure (after a snapshot restore). *)

val add_attr_parent : t -> ti:int -> a:int -> Model.parent -> unit
val remove_attr_parent : t -> ti:int -> a:int -> Model.parent -> unit
val add_join_parent : t -> ti:int -> fk:int -> Model.parent -> unit
val remove_join_parent : t -> ti:int -> fk:int -> Model.parent -> unit

val attr_add_legal : t -> ti:int -> a:int -> Model.parent -> bool
(** Would adding parent [p] to attribute [(ti, a)] keep the structure
    legal?  Equivalent to {!Stratify.is_legal} on the modified structure,
    given the current one is legal. *)

val join_add_legal : t -> ti:int -> fk:int -> Model.parent -> bool
(** Same for adding a parent to join indicator [(ti, fk)].  The parent is
    assumed well-formed (an own attribute or one reached through [fk]
    itself), which the search's move generator guarantees. *)
