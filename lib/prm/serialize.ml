open Selest_util
open Selest_db
open Selest_bn

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* Decoding leans on the Sexp accessors, which raise [Failure] on shape
   errors; [guard] converts anything raised while decoding untrusted input
   into the one documented exception. *)
let guard f =
  try f () with
  | Error _ as e -> raise e
  | Failure m -> raise (Error m)
  | Sys_error m -> raise (Error m)
  | Not_found -> raise (Error "Serialize: malformed model file")
  | Invalid_argument m -> raise (Error ("Serialize: " ^ m))

(* ---- schema fingerprint -------------------------------------------------- *)

let schema_sexp schema =
  Sexp.list
    (Sexp.atom "schema"
    :: Array.to_list
         (Array.map
            (fun ts ->
              Sexp.list
                [
                  Sexp.atom "table";
                  Sexp.atom ts.Schema.tname;
                  Sexp.list
                    (Sexp.atom "attrs"
                    :: Array.to_list
                         (Array.map
                            (fun a ->
                              Sexp.list
                                [
                                  Sexp.atom a.Schema.aname;
                                  Sexp.int (Value.card a.Schema.domain);
                                  Sexp.int (if Value.is_ordinal a.Schema.domain then 1 else 0);
                                ])
                            ts.Schema.attrs));
                  Sexp.list
                    (Sexp.atom "fks"
                    :: Array.to_list
                         (Array.map
                            (fun f ->
                              Sexp.list [ Sexp.atom f.Schema.fkname; Sexp.atom f.Schema.target ])
                            ts.Schema.fks));
                ])
            (Schema.tables schema)))

let schema_fingerprint schema = Digest.to_hex (Digest.string (Sexp.to_string (schema_sexp schema)))

let check_schema schema saved =
  let expected = Sexp.to_string (schema_sexp schema) in
  let got = Sexp.to_string saved in
  if expected <> got then
    error
      "Serialize: saved model's schema fingerprint (%s) does not match this database (%s)"
      (Digest.to_hex (Digest.string got))
      (Digest.to_hex (Digest.string expected))

(* ---- parents -------------------------------------------------------------- *)

let parent_sexp = function
  | Model.Own a -> Sexp.list [ Sexp.atom "own"; Sexp.int a ]
  | Model.Foreign (f, b) -> Sexp.list [ Sexp.atom "foreign"; Sexp.int f; Sexp.int b ]

let parent_of_sexp s =
  match Sexp.as_list s with
  | [ Sexp.Atom "own"; a ] -> Model.Own (Sexp.as_int a)
  | [ Sexp.Atom "foreign"; f; b ] -> Model.Foreign (Sexp.as_int f, Sexp.as_int b)
  | _ -> error "Serialize: malformed parent"

(* ---- CPDs ------------------------------------------------------------------ *)

let int_array_sexp tag a =
  Sexp.list (Sexp.atom tag :: Array.to_list (Array.map Sexp.int a))

let int_array_of t tag =
  Array.of_list (List.map Sexp.as_int (Sexp.field_values t tag))

let float_array_of t tag =
  Array.of_list (List.map Sexp.as_float (Sexp.field_values t tag))

let rec node_sexp = function
  | Tree_cpd.Leaf { dist; weight } ->
    Sexp.list
      (Sexp.atom "leaf" :: Sexp.float weight :: Array.to_list (Array.map Sexp.float dist))
  | Tree_cpd.Split { pindex; arms = Tree_cpd.Multi kids } ->
    Sexp.list (Sexp.atom "multi" :: Sexp.int pindex :: Array.to_list (Array.map node_sexp kids))
  | Tree_cpd.Split { pindex; arms = Tree_cpd.Thresh (cut, lo, hi) } ->
    Sexp.list [ Sexp.atom "thresh"; Sexp.int pindex; Sexp.int cut; node_sexp lo; node_sexp hi ]

let rec node_of_sexp s =
  match Sexp.as_list s with
  | Sexp.Atom "leaf" :: weight :: dist ->
    Tree_cpd.Leaf
      {
        dist = Array.of_list (List.map Sexp.as_float dist);
        weight = Sexp.as_float weight;
      }
  | Sexp.Atom "multi" :: pindex :: kids ->
    Tree_cpd.Split
      {
        pindex = Sexp.as_int pindex;
        arms = Tree_cpd.Multi (Array.of_list (List.map node_of_sexp kids));
      }
  | [ Sexp.Atom "thresh"; pindex; cut; lo; hi ] ->
    Tree_cpd.Split
      {
        pindex = Sexp.as_int pindex;
        arms = Tree_cpd.Thresh (Sexp.as_int cut, node_of_sexp lo, node_of_sexp hi);
      }
  | _ -> error "Serialize: malformed tree node"

let cpd_sexp = function
  | Cpd.Table c ->
    Sexp.list
      [
        Sexp.atom "table-cpd";
        Sexp.list [ Sexp.atom "child-card"; Sexp.int c.Table_cpd.child_card ];
        int_array_sexp "parents" c.Table_cpd.parents;
        int_array_sexp "parent-cards" c.Table_cpd.parent_cards;
        Sexp.list
          (Sexp.atom "entries" :: Array.to_list (Array.map Sexp.float c.Table_cpd.table));
      ]
  | Cpd.Tree c ->
    Sexp.list
      [
        Sexp.atom "tree-cpd";
        Sexp.list [ Sexp.atom "child-card"; Sexp.int c.Tree_cpd.child_card ];
        int_array_sexp "parents" c.Tree_cpd.parents;
        int_array_sexp "parent-cards" c.Tree_cpd.parent_cards;
        int_array_sexp "ordinal"
          (Array.map (fun b -> if b then 1 else 0) c.Tree_cpd.parent_ordinal);
        Sexp.list [ Sexp.atom "root"; node_sexp c.Tree_cpd.root ];
      ]

let cpd_of_sexp s =
  match Sexp.as_list s with
  | Sexp.Atom "table-cpd" :: _ ->
    let child_card = Sexp.as_int (List.hd (Sexp.field_values s "child-card")) in
    let parents = int_array_of s "parents" in
    let parent_cards = int_array_of s "parent-cards" in
    let entries = float_array_of s "entries" in
    Cpd.Table (Table_cpd.of_table ~child_card ~parents ~parent_cards entries)
  | Sexp.Atom "tree-cpd" :: _ ->
    let child_card = Sexp.as_int (List.hd (Sexp.field_values s "child-card")) in
    let parents = int_array_of s "parents" in
    let parent_cards = int_array_of s "parent-cards" in
    let parent_ordinal = Array.map (fun i -> i = 1) (int_array_of s "ordinal") in
    let root = node_of_sexp (List.hd (Sexp.field_values s "root")) in
    Cpd.Tree (Tree_cpd.of_tree ~child_card ~parents ~parent_cards ~parent_ordinal root)
  | _ -> error "Serialize: malformed cpd"

(* ---- model ------------------------------------------------------------------ *)

let family_sexp fam =
  Sexp.list
    [
      Sexp.atom "family";
      Sexp.list (Sexp.atom "parents" :: Array.to_list (Array.map parent_sexp fam.Model.parents));
      Sexp.list [ Sexp.atom "cpd"; cpd_sexp fam.Model.cpd ];
    ]

let family_of_sexp s =
  let parents =
    Array.of_list (List.map parent_of_sexp (Sexp.field_values s "parents"))
  in
  let cpd = cpd_of_sexp (List.hd (Sexp.field_values s "cpd")) in
  { Model.parents; cpd }

let to_sexp (model : Model.t) =
  Sexp.list
    [
      Sexp.atom "selest-prm";
      Sexp.list [ Sexp.atom "version"; Sexp.int 1 ];
      schema_sexp model.Model.schema;
      Sexp.list
        (Sexp.atom "tables"
        :: Array.to_list
             (Array.map
                (fun tm ->
                  Sexp.list
                    [
                      Sexp.atom "table-model";
                      Sexp.list
                        (Sexp.atom "attrs"
                        :: Array.to_list (Array.map family_sexp tm.Model.attr_families));
                      Sexp.list
                        (Sexp.atom "joins"
                        :: Array.to_list (Array.map family_sexp tm.Model.join_families));
                    ])
                model.Model.tables));
    ]

let of_sexp ~schema s =
  guard @@ fun () ->
  (match Sexp.as_list s with
  | Sexp.Atom "selest-prm" :: _ -> ()
  | _ -> error "Serialize: not a selest-prm file");
  let version = Sexp.as_int (List.hd (Sexp.field_values s "version")) in
  if version <> 1 then error "Serialize: unsupported version %d" version;
  check_schema schema (Sexp.field s "schema");
  let tables =
    Array.of_list
      (List.map
         (fun tm ->
           let attr_families =
             Array.of_list (List.map family_of_sexp (Sexp.field_values tm "attrs"))
           in
           let join_families =
             Array.of_list (List.map family_of_sexp (Sexp.field_values tm "joins"))
           in
           { Model.attr_families; join_families })
         (Sexp.field_values s "tables"))
  in
  Model.create schema tables

let save path model = Sexp.save path (to_sexp model)
let load path ~schema = guard (fun () -> of_sexp ~schema (Sexp.load path))
