open Selest_db
module Estimator = Selest_est.Estimator

type result = {
  tree : Jointree.t;
  cost : float;
  n_subsets : int;
  n_fallbacks : int;
}

let popcount mask =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 mask

let bits mask =
  let rec go acc i m =
    if m = 0 then List.rev acc
    else go (if m land 1 = 1 then i :: acc else acc) (i + 1) (m lsr 1)
  in
  go [] 0 mask

let best ?(bushy = false) ?fallback ~cost q =
  let tvs = Array.of_list (List.map fst q.Query.tvars) in
  let n = Array.length tvs in
  if n < 2 then invalid_arg "Optimizer.best: need at least two tuple variables";
  if n > Sys.int_size - 2 then invalid_arg "Optimizer.best: too many tuple variables";
  let idx tv =
    let rec go i = if tvs.(i) = tv then i else go (i + 1) in
    go 0
  in
  (* Adjacency bitmasks from the query's join edges. *)
  let adj = Array.make n 0 in
  List.iter
    (fun j ->
      let c = idx j.Query.child_tv and p = idx j.Query.parent_tv in
      adj.(c) <- adj.(c) lor (1 lsl p);
      adj.(p) <- adj.(p) lor (1 lsl c))
    q.Query.joins;
  let connected mask =
    let seed = mask land -mask in
    let reach = ref seed in
    let frontier = ref seed in
    while !frontier <> 0 do
      let next = ref 0 in
      List.iter (fun i -> next := !next lor (adj.(i) land mask)) (bits !frontier);
      frontier := !next land lnot !reach;
      reach := !reach lor !next
    done;
    !reach = mask
  in
  let full = (1 lsl n) - 1 in
  if not (connected full) then invalid_arg "Optimizer.best: disconnected join graph";
  (* One estimate per connected subset, memoized; Unsupported sub-queries
     fall back to the secondary oracle when one is given. *)
  let sizes : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let n_fallbacks = ref 0 in
  let price mask =
    match Hashtbl.find_opt sizes mask with
    | Some s -> s
    | None ->
      let sub = Jointree.subquery q (List.map (fun i -> tvs.(i)) (bits mask)) in
      let s =
        try cost sub
        with Estimator.Unsupported _ as exn -> (
          match fallback with
          | None -> raise exn
          | Some fb ->
            incr n_fallbacks;
            fb sub)
      in
      Hashtbl.add sizes mask s;
      s
  in
  (* dp.(mask) = cheapest tree producing that connected subset, with its
     C_out; singletons are free (scans are not charged by C_out). *)
  let dp : (int, float * Jointree.t) Hashtbl.t = Hashtbl.create 64 in
  let rec solve mask =
    match Hashtbl.find_opt dp mask with
    | Some r -> r
    | None ->
      let r =
        if popcount mask = 1 then (0.0, Jointree.Leaf tvs.(List.hd (bits mask)))
        else begin
          let here = price mask in
          let best_cost = ref infinity and best_tree = ref None in
          let consider c t = if c < !best_cost then begin
            best_cost := c;
            best_tree := Some t
          end in
          if bushy then begin
            (* Every split into two connected halves; fixing the lowest
               bit on the left halves the enumeration (Join(a,b) and
               Join(b,a) cost the same). *)
            let low = mask land -mask in
            let rec submasks s =
              if s <> 0 then begin
                let left = s lor low in
                let right = mask land lnot left in
                if right <> 0 && connected left && connected right then begin
                  let cl, tl = solve left and cr, tr = solve right in
                  consider (cl +. cr) (Jointree.Join (tl, tr))
                end;
                submasks ((s - 1) land mask land lnot low)
              end
            in
            submasks (mask land lnot low);
            (* low alone on the left *)
            let right = mask land lnot low in
            if connected right then begin
              let cl, tl = solve low and cr, tr = solve right in
              consider (cl +. cr) (Jointree.Join (tl, tr))
            end
          end
          else
            (* Left-deep: peel one tuple variable off the right. *)
            List.iter
              (fun i ->
                let rest = mask land lnot (1 lsl i) in
                if connected rest then begin
                  let cr, tr = solve rest in
                  consider cr (Jointree.Join (tr, Jointree.Leaf tvs.(i)))
                end)
              (bits mask);
          match !best_tree with
          | Some t -> (here +. !best_cost, t)
          | None -> assert false (* mask connected => a valid step exists *)
        end
      in
      Hashtbl.add dp mask r;
      r
  in
  let cost, tree = solve full in
  { tree; cost; n_subsets = Hashtbl.length sizes; n_fallbacks = !n_fallbacks }

let order_cost ~cost q order =
  let rec go acc prefix = function
    | [] -> acc
    | tv :: rest ->
      let prefix = tv :: prefix in
      let acc =
        if List.length prefix >= 2 then acc +. cost (Jointree.subquery q prefix)
        else acc
      in
      go acc prefix rest
  in
  go 0.0 [] order

let sum_intermediates ~cost q tree =
  let rec go = function
    | Jointree.Leaf _ -> 0.0
    | Jointree.Join (l, r) as t ->
      go l +. go r +. cost (Jointree.subquery q (Jointree.leaves t))
  in
  go tree

let independence db =
  let est = lazy (Selest_est.Avi.build db) in
  fun q -> (Lazy.force est).Estimator.estimate q

let for_estimator ?bushy db est q =
  est.Estimator.prepare q;
  best ?bushy ~fallback:(independence db) ~cost:est.Estimator.estimate q

let rank_correlation xs ys =
  if List.length xs <> List.length ys then invalid_arg "Optimizer.rank_correlation";
  let ranks l =
    let arr = Array.of_list l in
    let idx = Array.init (Array.length arr) (fun i -> i) in
    Array.sort (fun a b -> compare arr.(a) arr.(b)) idx;
    let r = Array.make (Array.length arr) 0.0 in
    (* average ranks for ties *)
    let i = ref 0 in
    while !i < Array.length idx do
      let j = ref !i in
      while !j + 1 < Array.length idx && arr.(idx.(!j + 1)) = arr.(idx.(!i)) do
        incr j
      done;
      let avg = float_of_int (!i + !j) /. 2.0 in
      for k = !i to !j do
        r.(idx.(k)) <- avg
      done;
      i := !j + 1
    done;
    r
  in
  let rx = ranks xs and ry = ranks ys in
  let n = Array.length rx in
  if n < 2 then 1.0
  else begin
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let mx = mean rx and my = mean ry in
    let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
    for i = 0 to n - 1 do
      num := !num +. ((rx.(i) -. mx) *. (ry.(i) -. my));
      dx := !dx +. ((rx.(i) -. mx) ** 2.0);
      dy := !dy +. ((ry.(i) -. my) ** 2.0)
    done;
    if !dx = 0.0 || !dy = 0.0 then 1.0 else !num /. sqrt (!dx *. !dy)
  end
