(** Cost-based join-order optimization — the paper's motivating
    application (Sec. 1: "cost-based query optimizers use intermediate
    result size estimates to choose the optimal query execution plan").

    The cost model is the classic C_out: a plan's cost is the sum of the
    estimated sizes of every intermediate result it materializes (every
    join node's sub-query, final result included).  Cardinalities come
    from any size oracle [Query.t -> float], so the same machinery ranks
    plans with the exact executor, a PRM, or the naive AVI estimator —
    making the impact of estimation quality on plan choice directly
    measurable.

    Enumeration is dynamic programming over {e connected} tuple-variable
    subsets (bitmask-indexed): left-deep by default, bushy on request.
    Because C_out charges each subset once, the DP memoizes one estimate
    per connected subset — the oracle is called [O(#connected subsets)]
    times, not once per enumerated plan. *)

type result = {
  tree : Jointree.t;
  cost : float;  (** C_out of [tree] under the given oracle *)
  n_subsets : int;  (** distinct connected sub-queries priced *)
  n_fallbacks : int;  (** of those, how many the fallback oracle priced *)
}

val best :
  ?bushy:bool ->
  ?fallback:(Selest_db.Query.t -> float) ->
  cost:(Selest_db.Query.t -> float) ->
  Selest_db.Query.t ->
  result
(** The C_out-minimal join tree ([bushy] defaults to [false]: left-deep
    only).  When [cost] raises {!Selest_est.Estimator.Unsupported} on a
    sub-query, [fallback] prices it instead (see {!independence}) so one
    unpriceable subset never aborts the whole enumeration; without a
    [fallback] the exception propagates.  Raises [Invalid_argument] if
    the query has fewer than two tuple variables or a disconnected join
    graph (same contract as {!Jointree.orders}). *)

val order_cost :
  cost:(Selest_db.Query.t -> float) -> Selest_db.Query.t -> string list -> float
(** C_out of one left-deep order: the estimated size of every prefix of
    length >= 2, plus the final result. *)

val sum_intermediates :
  cost:(Selest_db.Query.t -> float) -> Selest_db.Query.t -> Jointree.t -> float
(** C_out of an arbitrary tree under an oracle: the estimated size of
    every join node's sub-query. *)

val independence : Selest_db.Database.t -> Selest_db.Query.t -> float
(** The documented default fallback: AVI independence cost
    ({!Selest_est.Avi.build} over the full database, built lazily on
    first use), i.e. marginal-histogram selectivities under the
    attribute-value-independence and uniform-join assumptions.  Covers
    every table and attribute, so it never raises [Unsupported]. *)

val for_estimator :
  ?bushy:bool ->
  Selest_db.Database.t ->
  Selest_est.Estimator.t ->
  Selest_db.Query.t ->
  result
(** [best] with the estimator's [estimate] as the oracle and
    {!independence} as the fallback.  The estimator's [prepare] is called
    on the full query first. *)

val rank_correlation : float list -> float list -> float
(** Spearman rank correlation between two cost vectors over the same plan
    list (average ranks for ties) — how faithfully an estimator
    reproduces the true plan ranking. *)
