open Selest_db
module Span = Selest_obs.Span
module Clock = Selest_obs.Clock

type node = {
  subtree : Jointree.t;
  label : string;
  out_rows : int;
  out_bytes : int;
  ns : int;
  children : node list;
}

type result = {
  root : node;
  rows : int;
  intermediate_rows : int;
  total_ns : int;
}

(* An intermediate relation: for each bound tuple variable, the base-table
   row each output row maps to.  Columns are parallel arrays of equal
   length. *)
type rel = { rtvs : string array; cols : int array array; nrows : int }

let bytes_of ~nrows ~width = nrows * width * 8

(* Growable pair buffer for join matches (output size is unknown). *)
type pairs = { mutable li : int array; mutable ri : int array; mutable n : int }

let pairs_create () = { li = Array.make 64 0; ri = Array.make 64 0; n = 0 }

let pairs_push p a b =
  if p.n = Array.length p.li then begin
    let grow arr =
      let bigger = Array.make (2 * Array.length arr) 0 in
      Array.blit arr 0 bigger 0 (Array.length arr);
      bigger
    in
    p.li <- grow p.li;
    p.ri <- grow p.ri
  end;
  p.li.(p.n) <- a;
  p.ri.(p.n) <- b;
  p.n <- p.n + 1

let gather rel idx n =
  Array.map (fun col -> Array.init n (fun i -> col.(idx.(i)))) rel.cols

let index_of arr x =
  let rec go i = if arr.(i) = x then i else go (i + 1) in
  go 0

let scan db q tv =
  let mask = Exec.select_mask db q tv in
  let n = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask in
  let rows = Array.make n 0 in
  let k = ref 0 in
  Array.iteri
    (fun i b ->
      if b then begin
        rows.(!k) <- i;
        incr k
      end)
    mask;
  { rtvs = [| tv |]; cols = [| rows |]; nrows = n }

(* Join [l] and [r] on the unique connecting edge, or by Cartesian
   product when the query leaves them unconnected. *)
let join db q l r =
  let edge =
    Jointree.connecting_join q (Array.to_list l.rtvs) (Array.to_list r.rtvs)
  in
  let matches = pairs_create () in
  let label =
    match edge with
    | None ->
      for i = 0 to l.nrows - 1 do
        for j = 0 to r.nrows - 1 do
          pairs_push matches i j
        done
      done;
      "cartesian"
    | Some j ->
      let child_in_l = Array.mem j.Query.child_tv l.rtvs in
      let crel, prel = if child_in_l then (l, r) else (r, l) in
      let fk_col =
        Table.fk_col_by_name (Database.table db (Query.table_of q j.Query.child_tv)) j.Query.fk
      in
      let crows = crel.cols.(index_of crel.rtvs j.Query.child_tv) in
      let prows = prel.cols.(index_of prel.rtvs j.Query.parent_tv) in
      (* Build on the smaller input, probe with the larger. *)
      let build_child = crel.nrows <= prel.nrows in
      let tbl = Hashtbl.create (max 16 (min crel.nrows prel.nrows)) in
      if build_child then begin
        for i = 0 to crel.nrows - 1 do
          Hashtbl.add tbl fk_col.(crows.(i)) i
        done;
        for i = 0 to prel.nrows - 1 do
          List.iter
            (fun ci -> pairs_push matches ci i)
            (Hashtbl.find_all tbl prows.(i))
        done
      end
      else begin
        for i = 0 to prel.nrows - 1 do
          Hashtbl.add tbl prows.(i) i
        done;
        for i = 0 to crel.nrows - 1 do
          List.iter
            (fun pi -> pairs_push matches i pi)
            (Hashtbl.find_all tbl fk_col.(crows.(i)))
        done
      end;
      (* Matches are (child row, parent row); reorder to (left, right). *)
      if not child_in_l then begin
        let t = matches.li in
        matches.li <- matches.ri;
        matches.ri <- t
      end;
      Printf.sprintf "%s.%s=%s" j.Query.child_tv j.Query.fk j.Query.parent_tv
  in
  let n = matches.n in
  let lcols = gather l matches.li n in
  let rcols = gather r matches.ri n in
  ( { rtvs = Array.append l.rtvs r.rtvs;
      cols = Array.append lcols rcols;
      nrows = n },
    label )

let check_tree q tree =
  let tl = List.sort compare (Jointree.leaves tree) in
  let ql = List.sort compare (List.map fst q.Query.tvars) in
  if tl <> ql then
    invalid_arg "Hashjoin.run: tree leaves do not match the query's tuple variables";
  let rec no_dup seen = function
    | [] -> ()
    | tv :: rest ->
      if List.mem tv seen then
        invalid_arg "Hashjoin.run: duplicate tuple variable in tree"
      else no_dup (tv :: seen) rest
  in
  no_dup [] (Jointree.leaves tree)

let run db q tree =
  Exec.validate db q;
  check_tree q tree;
  let t0 = Clock.now_ns () in
  let rec exec subtree =
    match subtree with
    | Jointree.Leaf tv ->
      Span.with_ ~attrs:[ ("tv", tv) ] "opt.scan" (fun sp ->
          let s0 = Clock.now_ns () in
          let rel = scan db q tv in
          let ns = Clock.now_ns () - s0 in
          Span.add sp "rows" (string_of_int rel.nrows);
          ( rel,
            { subtree;
              label = Printf.sprintf "scan %s=%s" tv (Query.table_of q tv);
              out_rows = rel.nrows;
              out_bytes = bytes_of ~nrows:rel.nrows ~width:1;
              ns;
              children = [];
            } ))
    | Jointree.Join (lt, rt) ->
      let lrel, lnode = exec lt in
      let rrel, rnode = exec rt in
      Span.with_ "opt.join" (fun sp ->
          let s0 = Clock.now_ns () in
          let rel, on = join db q lrel rrel in
          let ns = Clock.now_ns () - s0 in
          Span.add sp "on" on;
          Span.add sp "rows" (string_of_int rel.nrows);
          ( rel,
            { subtree;
              label =
                (if on = "cartesian" then "cartesian_product"
                 else "hash_join " ^ on);
              out_rows = rel.nrows;
              out_bytes = bytes_of ~nrows:rel.nrows ~width:(Array.length rel.rtvs);
              ns;
              children = [ lnode; rnode ];
            } ))
  in
  let rel, root = exec tree in
  let total_ns = Clock.now_ns () - t0 in
  let rec sum_joins n =
    List.fold_left
      (fun acc c -> acc + sum_joins c)
      (if n.children = [] then 0 else n.out_rows)
      n.children
  in
  { root; rows = rel.nrows; intermediate_rows = sum_joins root; total_ns }

let count db q tree = float_of_int (run db q tree).rows

let ops result =
  let rec go n = List.concat_map go n.children @ [ n ] in
  go result.root
