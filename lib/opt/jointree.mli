(** Join trees: the shape of a physical plan over a select–keyjoin query.

    A tree's leaves are the query's tuple variables; each internal node
    joins its two children on the (unique, by the forest invariant of
    {!Selest_db.Exec.validate}) query join edge connecting them — or by a
    Cartesian product when the query leaves them unconnected.  Left-deep
    trees correspond one-to-one with join {e orders} (the representation
    the old [Workload.Planner] used); {!Optimizer} can also produce bushy
    trees. *)

type t =
  | Leaf of string  (** a tuple variable *)
  | Join of t * t

val leaves : t -> string list
(** Tuple variables of the subtree, left to right. *)

val left_deep : string list -> t
(** The left-deep tree of a join order.  Raises [Invalid_argument] on an
    empty order. *)

val order_of : t -> string list option
(** The join order of a left-deep tree; [None] if the tree is bushy. *)

val subquery : Selest_db.Query.t -> string list -> Selest_db.Query.t
(** The sub-query over a subset of tuple variables: those variables, the
    joins among them, and the selects on them (the old
    [Planner.prefix_query], generalized to any subset). *)

val orders : Selest_db.Query.t -> string list list
(** All connected left-deep join orders: every prefix is connected
    through the query's join clauses.  Raises [Invalid_argument] if the
    query has fewer than two tuple variables or a disconnected join
    graph. *)

val connecting_join : Selest_db.Query.t -> string list -> string list -> Selest_db.Query.join option
(** The query join edge linking two disjoint tuple-variable sets.  By the
    forest invariant there is at most one; [None] means a Cartesian
    product. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, e.g. [((c ⨝ p) ⨝ s)]. *)
