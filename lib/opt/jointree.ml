open Selest_db

type t =
  | Leaf of string
  | Join of t * t

let rec leaves = function
  | Leaf tv -> [ tv ]
  | Join (l, r) -> leaves l @ leaves r

let left_deep = function
  | [] -> invalid_arg "Jointree.left_deep: empty order"
  | tv :: rest -> List.fold_left (fun acc tv -> Join (acc, Leaf tv)) (Leaf tv) rest

let order_of tree =
  let rec go acc = function
    | Leaf tv -> Some (tv :: acc)
    | Join (l, Leaf tv) -> go (tv :: acc) l
    | Join (_, Join _) -> None
  in
  go [] tree

let subquery q tvs =
  let tvars = List.filter (fun (tv, _) -> List.mem tv tvs) q.Query.tvars in
  let joins =
    List.filter
      (fun j -> List.mem j.Query.child_tv tvs && List.mem j.Query.parent_tv tvs)
      q.Query.joins
  in
  let selects = List.filter (fun s -> List.mem s.Query.sel_tv tvs) q.Query.selects in
  Query.create ~tvars ~joins ~selects ()

let connected_to joins tv others =
  List.exists
    (fun j ->
      (j.Query.child_tv = tv && List.mem j.Query.parent_tv others)
      || (j.Query.parent_tv = tv && List.mem j.Query.child_tv others))
    joins

let orders q =
  let tvs = List.map fst q.Query.tvars in
  if List.length tvs < 2 then
    invalid_arg "Jointree.orders: need at least two tuple variables";
  let rec extend prefix remaining =
    if remaining = [] then [ List.rev prefix ]
    else
      List.concat_map
        (fun tv ->
          if connected_to q.Query.joins tv prefix then
            extend (tv :: prefix) (List.filter (fun x -> x <> tv) remaining)
          else [])
        remaining
  in
  let all =
    List.concat_map
      (fun first -> extend [ first ] (List.filter (fun x -> x <> first) tvs))
      tvs
  in
  if all = [] then invalid_arg "Jointree.orders: disconnected join graph";
  all

let connecting_join q left right =
  List.find_opt
    (fun j ->
      (List.mem j.Query.child_tv left && List.mem j.Query.parent_tv right)
      || (List.mem j.Query.child_tv right && List.mem j.Query.parent_tv left))
    q.Query.joins

let rec pp fmt = function
  | Leaf tv -> Format.pp_print_string fmt tv
  | Join (l, r) -> Format.fprintf fmt "(%a \xe2\xa8\x9d %a)" pp l pp r
