let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let render ~est q result =
  let buf = Buffer.create 256 in
  let estimate node =
    let sub = Jointree.subquery q (Jointree.leaves node.Hashjoin.subtree) in
    match est sub with
    | v -> fmt_float v
    | exception _ -> "?"
  in
  let rec go indent arrow node =
    Buffer.add_string buf indent;
    Buffer.add_string buf arrow;
    Buffer.add_string buf
      (Printf.sprintf "%s  (est=%s rows) (actual=%d rows, %.1f us)\n"
         node.Hashjoin.label (estimate node) node.Hashjoin.out_rows
         (float_of_int node.Hashjoin.ns /. 1e3));
    let child_indent = if arrow = "" then indent else indent ^ "      " in
    List.iter (go child_indent "  ->  ") node.Hashjoin.children
  in
  go "" "" result.Hashjoin.root;
  Buffer.contents buf

let summary_line ~cost_est result =
  Printf.sprintf "C_out: est=%s actual=%d; total=%.1f us" (fmt_float cost_est)
    result.Hashjoin.intermediate_rows
    (float_of_int result.Hashjoin.total_ns /. 1e3)
