(** Postgres-style rendering of an executed plan: the join tree with
    estimated vs. actual cardinalities per operator — the estimation
    error's consequence, made visible where an optimizer would act on
    it.  Shared by the server's [EXPLAINPLAN] verb and the CLI's
    [selest optimize] command. *)

val render :
  est:(Selest_db.Query.t -> float) ->
  Selest_db.Query.t ->
  Hashjoin.result ->
  string
(** Render an execution result.  [est] prices each operator's sub-query
    (scans included) — pass the same oracle the optimizer used, fallback
    composed in, so the rendered estimates are the numbers the plan was
    chosen by.  An [est] that raises renders that operator's estimate as
    [?]. *)

val summary_line : cost_est:float -> Hashjoin.result -> string
(** One-line footer: estimated vs. actual C_out and total wall time. *)
