(** The physical executor: hash joins that materialize intermediates.

    {!Selest_db.Exec.query_size} computes result sizes by weight
    propagation and never builds a join result, so every join order costs
    the same there.  This executor does the real work — scan each tuple
    variable's table under its selects, then hash-join bottom-up along a
    {!Jointree.t} — and charges per-operator rows, bytes and wall time,
    so the join order an optimizer picks has a measurable consequence.

    An intermediate relation is columnar, like {!Selest_db.Table}: one
    [int array] of base-table row ids per tuple variable bound so far.  A
    join keys the child side on its foreign-key column's value and the
    parent side on its row id (the primary key), builds a hash table on
    the smaller input and probes with the larger; tuple-variable sets
    left unconnected by the query are combined by Cartesian product.

    Every operator runs inside a {!Selest_obs.Span} ([opt.scan] /
    [opt.join]) so traces of executed plans line up with the serving
    layer's request spans. *)

type node = {
  subtree : Jointree.t;  (** the plan subtree this operator computed *)
  label : string;  (** e.g. [scan p=patient] or [hash_join c.patient=p] *)
  out_rows : int;
  out_bytes : int;  (** materialized size: rows × bound tuple variables × 8 *)
  ns : int;  (** wall time of this operator alone (children excluded) *)
  children : node list;  (** [[]] for a scan, two entries for a join *)
}

type result = {
  root : node;
  rows : int;  (** final result size *)
  intermediate_rows : int;
      (** sum of every join operator's output rows (final included) — the
          C_out cost of the executed plan, with exact cardinalities *)
  total_ns : int;
}

val run : Selest_db.Database.t -> Selest_db.Query.t -> Jointree.t -> result
(** Execute the query along the given join tree.  Validates the query
    against the database ({!Selest_db.Exec.validate}) and checks the
    tree's leaves are exactly the query's tuple variables; raises
    [Invalid_argument] otherwise. *)

val count : Selest_db.Database.t -> Selest_db.Query.t -> Jointree.t -> float
(** [run]'s final row count as a float — comparable bit-for-bit with
    {!Selest_db.Exec.query_size} on any tree over the same query. *)

val ops : result -> node list
(** All operator nodes, in execution (post-) order. *)
