type metric =
  | Counter of {
      name : string;
      help : string;
      labels : (string * string) list;
      value : float;
    }
  | Gauge of {
      name : string;
      help : string;
      labels : (string * string) list;
      value : float;
    }
  | Histogram of {
      name : string;
      help : string;
      labels : (string * string) list;
      buckets : (float * int) array;
      sum : float;
      count : int;
    }

let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' -> if i = 0 then Buffer.add_char b '_'; Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let name_of = function
  | Counter { name; _ } | Gauge { name; _ } | Histogram { name; _ } -> name

let kind_of = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let help_of = function
  | Counter { help; _ } | Gauge { help; _ } | Histogram { help; _ } -> help

(* Prometheus floats: integral values render without a fraction, +Inf as
   the literal the format specifies. *)
let fmt_value v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
    let pairs =
      List.map
        (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
        labels
    in
    "{" ^ String.concat "," pairs ^ "}"

let render_sample b name labels value =
  Buffer.add_string b name;
  Buffer.add_string b (render_labels labels);
  Buffer.add_char b ' ';
  Buffer.add_string b (fmt_value value);
  Buffer.add_char b '\n'

let render metrics =
  let b = Buffer.create 1024 in
  let last : (string * string) option ref = ref None in
  List.iter
    (fun m ->
      let name = name_of m and kind = kind_of m in
      (match !last with
      | Some (n, k) when n = name ->
        if k <> kind then
          invalid_arg
            (Printf.sprintf "Prometheus.render: %s declared as %s and %s" name
               k kind)
      | _ ->
        if help_of m <> "" then
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" name (help_of m));
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind);
        last := Some (name, kind));
      match m with
      | Counter { labels; value; _ } | Gauge { labels; value; _ } ->
        render_sample b name labels value
      | Histogram { labels; buckets; sum; count; _ } ->
        let has_inf =
          Array.length buckets > 0
          && fst buckets.(Array.length buckets - 1) = Float.infinity
        in
        Array.iter
          (fun (le, cum) ->
            render_sample b (name ^ "_bucket")
              (labels @ [ ("le", fmt_value le) ])
              (float_of_int cum))
          buckets;
        if not has_inf then
          render_sample b (name ^ "_bucket")
            (labels @ [ ("le", "+Inf") ])
            (float_of_int count);
        render_sample b (name ^ "_sum") labels sum;
        render_sample b (name ^ "_count") labels (float_of_int count))
    metrics;
  Buffer.contents b

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_value : float;
}

let parse_value s =
  match String.lowercase_ascii s with
  | "+inf" | "inf" -> Float.infinity
  | "-inf" -> Float.neg_infinity
  | "nan" -> Float.nan
  | _ -> (
    match float_of_string_opt s with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Prometheus.parse: bad value %S" s))

(* Parse [k="v",...}] starting after '{'; returns (labels, index past '}'). *)
let parse_labels line i0 =
  let n = String.length line in
  let rec loop acc i =
    if i < n && line.[i] = '}' then (List.rev acc, i + 1)
    else begin
      let eq = String.index_from line i '=' in
      let key = String.trim (String.sub line i (eq - i)) in
      if eq + 1 >= n || line.[eq + 1] <> '"' then
        failwith "Prometheus.parse: unquoted label value";
      let b = Buffer.create 16 in
      let rec value j =
        if j >= n then failwith "Prometheus.parse: unterminated label value"
        else
          match line.[j] with
          | '\\' when j + 1 < n ->
            (match line.[j + 1] with
            | 'n' -> Buffer.add_char b '\n'
            | c -> Buffer.add_char b c);
            value (j + 2)
          | '"' -> j + 1
          | c ->
            Buffer.add_char b c;
            value (j + 1)
      in
      let after = value (eq + 2) in
      let acc = (key, Buffer.contents b) :: acc in
      if after < n && line.[after] = ',' then loop acc (after + 1)
      else if after < n && line.[after] = '}' then (List.rev acc, after + 1)
      else failwith "Prometheus.parse: malformed label set"
    end
  in
  loop [] i0

let parse text =
  let types = ref [] and samples = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" then ()
         else if String.length line > 0 && line.[0] = '#' then begin
           match String.split_on_char ' ' line with
           | "#" :: "TYPE" :: name :: kind :: _ ->
             types := (name, kind) :: !types
           | _ -> ()
         end
         else begin
           let brace = String.index_opt line '{' in
           let name, labels, rest_i =
             match brace with
             | Some i ->
               let labels, after = parse_labels line (i + 1) in
               (String.sub line 0 i, labels, after)
             | None -> (
               match String.index_opt line ' ' with
               | Some i -> (String.sub line 0 i, [], i)
               | None -> failwith "Prometheus.parse: sample without value")
           in
           let rest =
             String.trim
               (String.sub line rest_i (String.length line - rest_i))
           in
           let value =
             match String.split_on_char ' ' rest with
             | v :: _ -> parse_value v
             | [] -> failwith "Prometheus.parse: sample without value"
           in
           samples :=
             { sample_name = name; sample_labels = labels;
               sample_value = value }
             :: !samples
         end);
  (List.rev !types, List.rev !samples)

let find_sample samples ~name ?(labels = []) () =
  List.find_map
    (fun s ->
      if
        s.sample_name = name
        && List.for_all
             (fun (k, v) -> List.assoc_opt k s.sample_labels = Some v)
             labels
      then Some s.sample_value
      else None)
    samples
