(* Per-domain, lock-free telemetry shards merged on read.

   Every domain that touches a [t] gets its own shard via [Domain.DLS]:
   a hashtable of named monotonic counters and one of named latency
   histograms.  The hot path (incr / record_ns) runs entirely on the
   caller's shard — a domain-local hashtable probe plus an int bump or a
   Histogram.record — and never takes a lock or a contended cache line,
   so N writer domains scale where a mutex-guarded recorder flatlines.

   The per-shard mutex guards only the *name-map structure*: it is taken
   on the rare slow path that first creates a named slot in a shard, and
   by readers while they list a shard's slots.  Name lookups and value
   bumps on the owner's shard are unlocked — the owner is the only
   mutator of its tables, and readers never mutate them.

   Read side: [snapshot] lists every shard's slots under the shard lock,
   then merges values into fresh accumulators.  Value reads are racy by
   design — single-word, so they never tear, and monotone, so a snapshot
   is a consistent lower bound; totals are exact once writers quiesce or
   a happens-before edge exists (Domain.join, a mutex, an Atomic).
   Each snapshot carries a monotonically increasing epoch, and
   [Snapshot.delta] subtracts two snapshots into the window between
   their epochs — the primitive HEALTH's burn-rate windows stand on. *)

type shard = {
  lock : Mutex.t; (* name-map structure only; never held on the hot path *)
  counters : (string, int ref) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
  qerrors : (string, Qerror.t) Hashtbl.t;
  (* Handle-indexed fast slots, grown lazily to cover the largest handle
     this shard has bumped.  The owner is the only writer; growth swaps
     the array under [lock] (values copied over), so a racy reader sees
     either array — both consistent lower bounds. *)
  mutable fastc : int array;
  mutable fasth : Histogram.t array;
}

(* The instance-wide handle registry: handle id -> name, append-only.
   Registration is a startup-time operation (callers hoist handles out
   of the request path), so a mutex plus linear dedup scan is fine. *)
type registry = {
  rlock : Mutex.t;
  mutable cnames : string array;
  mutable ccount : int;
  mutable hnames : string array;
  mutable hcount : int;
}

type counter_handle = int
type hist_handle = int

type t = {
  shards : shard list Atomic.t; (* every shard ever created, push-only *)
  key : shard Domain.DLS.key;
  epoch : int Atomic.t;
  reg : registry;
}

let create () =
  let shards = Atomic.make [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s =
          {
            lock = Mutex.create ();
            counters = Hashtbl.create 16;
            hists = Hashtbl.create 8;
            qerrors = Hashtbl.create 4;
            fastc = [||];
            fasth = [||];
          }
        in
        let rec push () =
          let cur = Atomic.get shards in
          if not (Atomic.compare_and_set shards cur (s :: cur)) then push ()
        in
        push ();
        s)
  in
  {
    shards;
    key;
    epoch = Atomic.make 0;
    reg =
      {
        rlock = Mutex.create ();
        cnames = [||];
        ccount = 0;
        hnames = [||];
        hcount = 0;
      };
  }

let shard t = Domain.DLS.get t.key

(* Find-or-create a counter slot in the caller's shard.  The unlocked
   probe is safe: only the owner adds to its tables, so the probe cannot
   race a resize; the locked add serializes against readers listing the
   shard. *)
let counter_ref sh name =
  match Hashtbl.find_opt sh.counters name with
  | Some r -> r
  | None ->
    Mutex.lock sh.lock;
    let r =
      match Hashtbl.find_opt sh.counters name with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add sh.counters name r;
        r
    in
    Mutex.unlock sh.lock;
    r

let hist sh name =
  match Hashtbl.find_opt sh.hists name with
  | Some h -> h
  | None ->
    Mutex.lock sh.lock;
    let h =
      match Hashtbl.find_opt sh.hists name with
      | Some h -> h
      | None ->
        let h = Histogram.create () in
        Hashtbl.add sh.hists name h;
        h
    in
    Mutex.unlock sh.lock;
    h

(* Per-shard q-error tables follow the same find-or-create discipline as
   counters and histograms.  Tables are created [~sync:false]: only the
   owner domain records into them, and cross-domain readers go through
   [qerrors_merged], whose racy reads are never torn (ints + unboxed
   floats). *)
let qerror_slot sh name =
  match Hashtbl.find_opt sh.qerrors name with
  | Some q -> q
  | None ->
    Mutex.lock sh.lock;
    let q =
      match Hashtbl.find_opt sh.qerrors name with
      | Some q -> q
      | None ->
        let q = Qerror.create ~sync:false () in
        Hashtbl.add sh.qerrors name q;
        q
    in
    Mutex.unlock sh.lock;
    q

let incr ?(by = 1) t name =
  let r = counter_ref (shard t) name in
  r := !r + by

let record_ns t name v = Histogram.record (hist (shard t) name) v

(* ---- handle API ------------------------------------------------------------
   Registration appends the name to the instance registry and returns
   its index; the hot path indexes a per-shard flat array with that id —
   a bounds check and an int bump / Histogram.record, no hashing, no
   option boxing, no allocation. *)

let reg_find names count name =
  let rec go i = if i >= count then -1 else if names.(i) = name then i else go (i + 1) in
  go 0

let counter_handle t name =
  let r = t.reg in
  Mutex.lock r.rlock;
  let id =
    match reg_find r.cnames r.ccount name with
    | -1 ->
      let n = r.ccount in
      if n = Array.length r.cnames then begin
        let grown = Array.make (max 8 (2 * n)) "" in
        Array.blit r.cnames 0 grown 0 n;
        r.cnames <- grown
      end;
      r.cnames.(n) <- name;
      r.ccount <- n + 1;
      n
    | i -> i
  in
  Mutex.unlock r.rlock;
  id

let hist_handle t name =
  let r = t.reg in
  Mutex.lock r.rlock;
  let id =
    match reg_find r.hnames r.hcount name with
    | -1 ->
      let n = r.hcount in
      if n = Array.length r.hnames then begin
        let grown = Array.make (max 8 (2 * n)) "" in
        Array.blit r.hnames 0 grown 0 n;
        r.hnames <- grown
      end;
      r.hnames.(n) <- name;
      r.hcount <- n + 1;
      n
    | i -> i
  in
  Mutex.unlock r.rlock;
  id

(* Cold paths: grow this shard's fast arrays to cover handle [h].  The
   swap happens under the shard lock so readers listing slots see a
   stable array; values are copied so the old array stays a valid lower
   bound for any racy unlocked reader. *)
let grow_fastc sh h =
  Mutex.lock sh.lock;
  if h >= Array.length sh.fastc then begin
    let cap = ref (max 8 (2 * Array.length sh.fastc)) in
    while !cap <= h do
      cap := 2 * !cap
    done;
    let grown = Array.make !cap 0 in
    Array.blit sh.fastc 0 grown 0 (Array.length sh.fastc);
    sh.fastc <- grown
  end;
  Mutex.unlock sh.lock

let grow_fasth sh h =
  Mutex.lock sh.lock;
  if h >= Array.length sh.fasth then begin
    let old = sh.fasth in
    let len = Array.length old in
    let cap = ref (max 8 (2 * len)) in
    while !cap <= h do
      cap := 2 * !cap
    done;
    let grown =
      Array.init !cap (fun i -> if i < len then old.(i) else Histogram.create ())
    in
    sh.fasth <- grown
  end;
  Mutex.unlock sh.lock

let hincr_by t h n =
  let sh = shard t in
  if h >= Array.length sh.fastc then grow_fastc sh h;
  sh.fastc.(h) <- sh.fastc.(h) + n

let hincr t h =
  let sh = shard t in
  if h >= Array.length sh.fastc then grow_fastc sh h;
  sh.fastc.(h) <- sh.fastc.(h) + 1

let hrecord t h v =
  let sh = shard t in
  if h >= Array.length sh.fasth then grow_fasth sh h;
  Histogram.record sh.fasth.(h) v

let qerror_shard t name = qerror_slot (shard t) name

let observe_qerror t name ~est ~truth =
  Qerror.observe (qerror_slot (shard t) name) ~est ~truth

(* ---- read side ------------------------------------------------------------- *)

type snapshot = {
  epoch : int;
  counters : (string * int) list; (* sorted by name *)
  hists : (string * Histogram.t) list; (* sorted by name; merged copies *)
}

(* The registered handle names, copied under the registry lock so the
   per-shard merge below indexes a stable array. *)
let reg_names (t : t) =
  let r = t.reg in
  Mutex.lock r.rlock;
  let cn = Array.sub r.cnames 0 r.ccount in
  let hn = Array.sub r.hnames 0 r.hcount in
  Mutex.unlock r.rlock;
  (cn, hn)

(* List a shard's slots under its lock, so a concurrent first-use add in
   the owner domain cannot race the iteration.  Handle slots fold in
   under their registered names: counters when nonzero, histograms when
   non-empty — mirroring the created-on-first-use semantics of the
   string-keyed tables (array growth over-covers neighboring ids). *)
let shard_slots ~cn ~hn sh =
  Mutex.lock sh.lock;
  let cs = ref (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) sh.counters []) in
  let fc = sh.fastc in
  for i = 0 to min (Array.length fc) (Array.length cn) - 1 do
    if fc.(i) <> 0 then cs := (cn.(i), fc.(i)) :: !cs
  done;
  let hs = ref (Hashtbl.fold (fun k h acc -> (k, h) :: acc) sh.hists []) in
  let fh = sh.fasth in
  for i = 0 to min (Array.length fh) (Array.length hn) - 1 do
    if Histogram.count fh.(i) > 0 then hs := (hn.(i), fh.(i)) :: !hs
  done;
  Mutex.unlock sh.lock;
  (!cs, !hs)

let snapshot (t : t) =
  let epoch = Atomic.fetch_and_add t.epoch 1 + 1 in
  let cn, hn = reg_names t in
  let counters = Hashtbl.create 32 and hists = Hashtbl.create 16 in
  List.iter
    (fun sh ->
      let cs, hs = shard_slots ~cn ~hn sh in
      List.iter
        (fun (k, v) ->
          match Hashtbl.find_opt counters k with
          | Some acc -> acc := !acc + v
          | None -> Hashtbl.add counters k (ref v))
        cs;
      List.iter
        (fun (k, h) ->
          match Hashtbl.find_opt hists k with
          | Some acc -> Histogram.merge_into ~into:acc h
          | None -> Hashtbl.add hists k (Histogram.copy h))
        hs)
    (Atomic.get t.shards);
  {
    epoch;
    counters =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters [] |> List.sort compare;
    hists = Hashtbl.fold (fun k h acc -> (k, h) :: acc) hists [] |> List.sort compare;
  }

let get t name =
  let r = t.reg in
  Mutex.lock r.rlock;
  let id = reg_find r.cnames r.ccount name in
  Mutex.unlock r.rlock;
  List.fold_left
    (fun acc (sh : shard) ->
      let acc =
        if id >= 0 && id < Array.length sh.fastc then acc + sh.fastc.(id)
        else acc
      in
      match Hashtbl.find_opt sh.counters name with
      | Some r -> acc + !r
      | None -> acc)
    0 (Atomic.get t.shards)

let hist_merged t name =
  let r = t.reg in
  Mutex.lock r.rlock;
  let id = reg_find r.hnames r.hcount name in
  Mutex.unlock r.rlock;
  let acc = Histogram.create () in
  List.iter
    (fun (sh : shard) ->
      if id >= 0 && id < Array.length sh.fasth then
        Histogram.merge_into ~into:acc sh.fasth.(id);
      match Hashtbl.find_opt sh.hists name with
      | Some h -> Histogram.merge_into ~into:acc h
      | None -> ())
    (Atomic.get t.shards);
  acc

let qerror_merged t name =
  let acc = Qerror.create () in
  List.iter
    (fun (sh : shard) ->
      match Hashtbl.find_opt sh.qerrors name with
      | Some q -> Qerror.merge_into ~into:acc q
      | None -> ())
    (Atomic.get t.shards);
  acc

let qerrors_merged t =
  let names = Hashtbl.create 8 in
  List.iter
    (fun (sh : shard) ->
      Mutex.lock sh.lock;
      Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) sh.qerrors;
      Mutex.unlock sh.lock)
    (Atomic.get t.shards);
  Hashtbl.fold (fun k () acc -> (k, qerror_merged t k) :: acc) names []
  |> List.sort compare

let n_shards t = List.length (Atomic.get t.shards)

module Snapshot = struct
  let find_counter s name =
    Option.value ~default:0 (List.assoc_opt name s.counters)

  let find_hist s name = List.assoc_opt name s.hists

  (* The window between two snapshots of the same telemetry instance:
     per-counter and bucket-wise histogram differences.  Counters or
     histograms absent from [prev] are taken as zero (they were created
     inside the window). *)
  let delta ~prev cur =
    let counters =
      List.map
        (fun (k, v) -> (k, v - find_counter prev k))
        cur.counters
    in
    let hists =
      List.map
        (fun (k, h) ->
          match find_hist prev k with
          | Some ph -> (k, Histogram.diff ~prev:ph h)
          | None -> (k, Histogram.copy h))
        cur.hists
    in
    { epoch = cur.epoch; counters; hists }
end
