(** Hierarchical spans with zero-cost-when-disabled recording.

    A span is a named interval of work with key=value attributes.  Spans
    nest: opening a span inside another records the parent's id, so a
    sink can reconstruct the call tree.  Timing uses {!Clock.now_ns}.

    Two sinks can be active:

    - a {e per-domain} sink, installed by {!collect} for the dynamic
      extent of one callback (used by [EXPLAIN] to capture a single
      request's spans without seeing concurrent domains' spans); and
    - a {e global} sink shared by all domains, installed by
      {!set_global_sink} (used by [--trace-log]).  The global sink must
      be thread-safe; span records are pushed from whichever domain
      closed the span.

    When neither sink is installed — the default — {!with_} costs one
    domain-local read and two branches, then runs the callback with the
    shared {!null} span: no clock read, no allocation of a record, and
    {!add} on the null span is a no-op.  This is the "global no-op sink"
    fast path; instrumentation can therefore stay on hot paths
    unconditionally. *)

type record = {
  name : string;
  id : int;  (** unique within a trace; odd-ball ids across domains don't collide *)
  parent : int;  (** id of the enclosing span, or [0] at the root *)
  depth : int;  (** nesting depth, [0] at the root *)
  start_ns : int;
  end_ns : int;
  attrs : (string * string) list;  (** in the order {!add} was called *)
}

type sink = record -> unit

type t
(** An open span, passed to the {!with_} callback.  Valid only within
    that callback. *)

val null : t
(** The dead span handed out when tracing is disabled.  {!add} on it
    does nothing. *)

val enabled : unit -> bool
(** [true] iff some sink (per-domain or global) would receive records
    right now.  Lets callers skip building expensive attribute strings. *)

val collecting : unit -> bool
(** [true] iff a {e per-domain} sink is installed — the dynamic extent of
    a {!collect}.  Deep engine instrumentation keys off this rather than
    {!enabled}: a per-request collect ([EXPLAIN]) must see the full stage
    breakdown and so disables fast paths that skip instrumented code (the
    plan bytecode executor), while a process-wide trace log
    ([--trace-log]) keeps the fast path and its coarse request spans. *)

val live : t -> bool
(** [true] for spans handed out while a sink is active, [false] for
    {!null}.  Cheaper than {!enabled} inside a [with_] callback. *)

val add : t -> string -> string -> unit
(** [add sp key value] attaches an attribute.  No-op on {!null}. *)

val with_ : ?attrs:(string * string) list -> string -> (t -> 'a) -> 'a
(** [with_ name f] opens a span, runs [f], closes the span and emits its
    record to the active sinks (even when [f] raises).  Records are
    emitted at close, so children are emitted before their parents. *)

val collect : (unit -> 'a) -> 'a * record list
(** [collect f] runs [f] with a buffering per-domain sink installed and
    returns the records of every span closed during [f], in emission
    order (children first).  A previously installed per-domain sink is
    saved and restored; the global sink still sees the records too. *)

val set_global_sink : sink option -> unit
(** Install (or clear) the process-wide sink.  The sink must tolerate
    concurrent calls from multiple domains. *)

val duration_us : record -> float
(** Span length in microseconds. *)
