let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type sink_state = { oc : out_channel; mutex : Mutex.t }

let current : sink_state option ref = ref None
let current_mutex = Mutex.create ()

let render (r : Span.record) =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"%s\",\"id\":%d,\"parent\":%d,\"depth\":%d,\"start_ns\":%d,\"end_ns\":%d,\"dur_us\":%.3f"
       (json_escape r.Span.name) r.Span.id r.Span.parent r.Span.depth
       r.Span.start_ns r.Span.end_ns (Span.duration_us r));
  (match r.Span.attrs with
  | [] -> ()
  | attrs ->
    Buffer.add_string b ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      attrs;
    Buffer.add_char b '}');
  Buffer.add_string b "}\n";
  Buffer.contents b

let write st r =
  let line = render r in
  Mutex.lock st.mutex;
  output_string st.oc line;
  Mutex.unlock st.mutex

let close () =
  Mutex.lock current_mutex;
  (match !current with
  | Some st ->
    Span.set_global_sink None;
    Mutex.lock st.mutex;
    (try close_out st.oc with Sys_error _ -> ());
    Mutex.unlock st.mutex;
    current := None
  | None -> ());
  Mutex.unlock current_mutex

let install file =
  close ();
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file in
  let st = { oc; mutex = Mutex.create () } in
  Mutex.lock current_mutex;
  current := Some st;
  Mutex.unlock current_mutex;
  Span.set_global_sink (Some (write st))

let installed () =
  Mutex.lock current_mutex;
  let r = match !current with Some _ -> true | None -> false in
  Mutex.unlock current_mutex;
  r
