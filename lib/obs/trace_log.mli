(** Structured JSONL trace log ([--trace-log FILE]).

    {!install} opens (appends to) [file] and registers a thread-safe
    global span sink that writes one JSON object per closed span:

    {v
    {"name":"ve.eliminate","id":3,"parent":2,"depth":2,
     "start_ns":123,"end_ns":456,"dur_us":0.333,
     "attrs":{"order":"1,0,2"}}
    v}

    Lines are written under a mutex so records from concurrent domains
    never interleave mid-line.  Installing replaces any previously
    installed trace log. *)

val install : string -> unit
(** Raises [Sys_error] if the file cannot be opened. *)

val close : unit -> unit
(** Flush, close, and deregister the sink.  No-op when not installed. *)

val installed : unit -> bool
