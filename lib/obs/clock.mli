(** Monotonic clock.

    All span timing uses [CLOCK_MONOTONIC] (via a tiny C stub) rather
    than [Unix.gettimeofday]: wall-clock time can jump backwards under
    NTP, which would produce negative span durations.  Readings are
    plain [int] nanoseconds — 63 bits hold ~292 years since boot, and an
    allocation-free external keeps the two reads bracketing every traced
    span off the GC. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin.  Only differences are
    meaningful. *)

val ns_to_us : int -> float
(** Convert a nanosecond delta to (fractional) microseconds. *)
