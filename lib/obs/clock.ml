external now_ns : unit -> (int[@untagged])
  = "selest_obs_clock_ns" "selest_obs_clock_ns_untagged"
[@@noalloc]

let ns_to_us ns = float_of_int ns /. 1e3
