(** Tail-sampled slow-log: a bounded ring of captured outlier requests.

    The server appends an entry when a request's latency crosses the
    quantile-derived threshold or a TRUTH-reported q-error crosses the
    accuracy gate; each entry keeps the canonical query, the trigger
    metadata and a {!Span.record} tree.  Captures are rare (tail
    sampling plus the server's rate limiter), so the single mutex here
    is never on the request hot path — ordinary requests don't touch
    this module. *)

type reason = Latency | Qerror

val reason_to_string : reason -> string

type entry = {
  seq : int;  (** capture number, 1-based, never reused *)
  verb : string;
  reason : reason;
  query : string;  (** canonical query, or the raw line when unparseable *)
  lat_ns : int;  (** the original request's latency *)
  threshold_ns : int;  (** latency threshold in force at capture time *)
  qerror : float option;  (** for q-error-gated captures *)
  spans : Span.record list;  (** span tree, emission order (children first) *)
}

type t

val create : ?capacity:int -> unit -> t
(** A ring holding the last [capacity] (default 128) captures.  Raises
    [Invalid_argument] on a non-positive capacity. *)

val capacity : t -> int

val add :
  t ->
  verb:string ->
  reason:reason ->
  query:string ->
  lat_ns:int ->
  threshold_ns:int ->
  ?qerror:float ->
  spans:Span.record list ->
  unit ->
  int
(** Append one capture, evicting the oldest when full; returns the
    entry's [seq]. *)

val total : t -> int
(** Entries ever captured (including evicted ones). *)

val length : t -> int
(** Entries currently held (≤ capacity). *)

val recent : ?n:int -> t -> entry list
(** The newest [n] (default: all held) entries, newest first. *)
