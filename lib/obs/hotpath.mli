(** Domain-local hot-path counters for the inference kernels.

    Unlike spans these are always on: each counter bump is a plain
    mutable-field increment on a domain-local record — no lock, no
    atomic, no branch on an enabled flag — cheap enough for the factor
    kernels (one bump per {e kernel call}, never per table entry).

    Counters accumulate monotonically per domain.  {!measure} takes a
    snapshot around a callback and returns the delta, which is how the
    server attributes kernel work to one request and rolls it into
    service-level metrics. *)

type t = {
  mutable factor_ops : int;  (** kernel invocations (product / sum-out / marginalize) *)
  mutable entries_touched : int;  (** table entries read or written by kernels *)
  mutable max_factor_entries : int;  (** largest intermediate factor table built *)
  mutable scratch_hits : int;  (** scratch-pool buffer reuses *)
  mutable scratch_misses : int;  (** scratch-pool allocations *)
  mutable order_hits : int;
      (** plan schedule-memo hits (a compiled plan reused a memoized
          elimination schedule for the binding's restricted-variable set) *)
  mutable order_misses : int;  (** schedule-memo misses (freshly planned) *)
  mutable program_hits : int;
      (** plan program-memo hits (a warm request ran an already-compiled
          bytecode program for its restricted-variable set) *)
  mutable program_misses : int;
      (** program-memo misses (a bytecode program was compiled for a new
          restricted-variable set before running) *)
}

val get : unit -> t
(** The calling domain's live counter record. *)

val kernel : entries:int -> out:int -> unit
(** Bump [factor_ops], add [entries] to [entries_touched], and raise the
    [max_factor_entries] high-water mark to [out] if larger. *)

val scratch_hit : unit -> unit
val scratch_miss : unit -> unit
val order_hit : unit -> unit
val order_miss : unit -> unit
val program_hit : unit -> unit
val program_miss : unit -> unit

val measure : (unit -> 'a) -> 'a * t
(** [measure f] runs [f] and returns the counter deltas it caused on
    this domain.  [max_factor_entries] in the delta is the high-water
    mark reached {e during} [f] (the surrounding mark is restored
    afterwards).  Work done by other domains (e.g. pool workers) is not
    included — measure inside the worker, not around the dispatch. *)

val to_pairs : t -> (string * int) list
(** Stable [name, value] listing, for STATS / EXPLAIN rendering. *)
