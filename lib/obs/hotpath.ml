type t = {
  mutable factor_ops : int;
  mutable entries_touched : int;
  mutable max_factor_entries : int;
  mutable scratch_hits : int;
  mutable scratch_misses : int;
  mutable order_hits : int;
  mutable order_misses : int;
  mutable program_hits : int;
  mutable program_misses : int;
}

let create () =
  { factor_ops = 0; entries_touched = 0; max_factor_entries = 0;
    scratch_hits = 0; scratch_misses = 0; order_hits = 0; order_misses = 0;
    program_hits = 0; program_misses = 0 }

let dkey = Domain.DLS.new_key create
let get () = Domain.DLS.get dkey

let kernel ~entries ~out =
  let c = get () in
  c.factor_ops <- c.factor_ops + 1;
  c.entries_touched <- c.entries_touched + entries;
  if out > c.max_factor_entries then c.max_factor_entries <- out

let scratch_hit () = let c = get () in c.scratch_hits <- c.scratch_hits + 1
let scratch_miss () = let c = get () in c.scratch_misses <- c.scratch_misses + 1
let order_hit () = let c = get () in c.order_hits <- c.order_hits + 1
let order_miss () = let c = get () in c.order_misses <- c.order_misses + 1
let program_hit () = let c = get () in c.program_hits <- c.program_hits + 1
let program_miss () = let c = get () in c.program_misses <- c.program_misses + 1

let copy c =
  { factor_ops = c.factor_ops; entries_touched = c.entries_touched;
    max_factor_entries = c.max_factor_entries; scratch_hits = c.scratch_hits;
    scratch_misses = c.scratch_misses; order_hits = c.order_hits;
    order_misses = c.order_misses; program_hits = c.program_hits;
    program_misses = c.program_misses }

let measure f =
  let cur = get () in
  let before = copy cur in
  (* Scope the high-water mark to [f]; restore the enclosing mark after. *)
  cur.max_factor_entries <- 0;
  let delta () =
    let d =
      { factor_ops = cur.factor_ops - before.factor_ops;
        entries_touched = cur.entries_touched - before.entries_touched;
        max_factor_entries = cur.max_factor_entries;
        scratch_hits = cur.scratch_hits - before.scratch_hits;
        scratch_misses = cur.scratch_misses - before.scratch_misses;
        order_hits = cur.order_hits - before.order_hits;
        order_misses = cur.order_misses - before.order_misses;
        program_hits = cur.program_hits - before.program_hits;
        program_misses = cur.program_misses - before.program_misses }
    in
    if before.max_factor_entries > cur.max_factor_entries then
      cur.max_factor_entries <- before.max_factor_entries;
    d
  in
  match f () with
  | x -> (x, delta ())
  | exception e -> ignore (delta ()); raise e

let to_pairs c =
  [ ("factor_ops", c.factor_ops);
    ("entries_touched", c.entries_touched);
    ("max_factor_entries", c.max_factor_entries);
    ("scratch_hits", c.scratch_hits);
    ("scratch_misses", c.scratch_misses);
    ("order_hits", c.order_hits);
    ("order_misses", c.order_misses);
    ("program_hits", c.program_hits);
    ("program_misses", c.program_misses) ]
