(** Rolling q-error histograms — the accuracy health signal.

    The q-error of an estimate [e] against ground truth [t] is the
    multiplicative miss factor [max (e'/t') (t'/e')] with
    [e' = max e 1.] and [t' = max t 1.] (the standard clamp: below one
    row the ratio is meaningless).  q-error is always [>= 1]; 1 means
    exact.

    Observations land in a fixed log-scale histogram (64 buckets,
    geometric with ratio [sqrt 2], so bucket 63 reaches 2^32) plus exact
    running sum / max, mirroring the latency histogram in
    [Serve.Metrics].  By default all operations are mutex-guarded; a
    table created with [~sync:false] skips the mutex entirely for use
    as domain-local state (one writer domain; concurrent readers from
    other domains via [merge_into] see racy-but-never-torn values —
    every field is an immediate int or an unboxed float slot, so a
    stale read is possible but a corrupt one is not). *)

type t

val create : ?sync:bool -> unit -> t
(** [create ()] is mutex-guarded (safe for concurrent writers).
    [create ~sync:false ()] elides the lock: writes must then come from
    a single owner domain, as in the per-domain telemetry shards. *)

val synchronized : t -> bool
(** Whether this table locks around every operation. *)

val n_buckets : int
val bucket_ratio : float

val value : est:float -> truth:float -> float
(** The q-error of one (estimate, truth) pair. *)

val observe : t -> est:float -> truth:float -> unit
val record : t -> float -> unit
(** Record an already-computed q-error (must be [>= 1]; clamped). *)

val count : t -> int
val mean : t -> float
(** Exact mean of observed q-errors; [nan] when empty. *)

val worst : t -> float
(** Exact maximum; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t 0.9]: upper edge of the bucket holding the p-quantile
    observation — same upper-edge quantization as
    [Serve.Metrics.percentile_us].  [nan] when empty. *)

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_q : float;
}

val summarize : t -> summary

val buckets : t -> (float * int) array
(** [(upper edge, cumulative count)] per bucket, Prometheus-ready. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into t] adds [t]'s histogram, count, sum and max into
    [into].  Each side is snapshotted under its own lock when
    synchronized; unsynchronized sources yield racy-but-never-torn
    contributions, matching [Obs.Telemetry] merge semantics. *)

val of_pairs : (float * float) list -> t
(** Build from [(truth, estimate)] pairs, e.g. a workload evaluation. *)
