(** Rolling q-error histograms — the accuracy health signal.

    The q-error of an estimate [e] against ground truth [t] is the
    multiplicative miss factor [max (e'/t') (t'/e')] with
    [e' = max e 1.] and [t' = max t 1.] (the standard clamp: below one
    row the ratio is meaningless).  q-error is always [>= 1]; 1 means
    exact.

    Observations land in a fixed log-scale histogram (64 buckets,
    geometric with ratio [sqrt 2], so bucket 63 reaches 2^32) plus exact
    running sum / max, mirroring the latency histogram in
    [Serve.Metrics].  All operations are mutex-guarded: the server
    records from pool workers while STATS / METRICS read concurrently. *)

type t

val create : unit -> t

val n_buckets : int
val bucket_ratio : float

val value : est:float -> truth:float -> float
(** The q-error of one (estimate, truth) pair. *)

val observe : t -> est:float -> truth:float -> unit
val record : t -> float -> unit
(** Record an already-computed q-error (must be [>= 1]; clamped). *)

val count : t -> int
val mean : t -> float
(** Exact mean of observed q-errors; [nan] when empty. *)

val worst : t -> float
(** Exact maximum; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t 0.9]: upper edge of the bucket holding the p-quantile
    observation — same upper-edge quantization as
    [Serve.Metrics.percentile_us].  [nan] when empty. *)

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_q : float;
}

val summarize : t -> summary

val buckets : t -> (float * int) array
(** [(upper edge, cumulative count)] per bucket, Prometheus-ready. *)

val of_pairs : (float * float) list -> t
(** Build from [(truth, estimate)] pairs, e.g. a workload evaluation. *)
