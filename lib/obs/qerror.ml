let n_buckets = 64
let bucket_ratio = sqrt 2.

(* bounds.(i) = upper edge of bucket i; bucket i holds q in
   (ratio^i, ratio^(i+1)], bucket 0 additionally holds q = 1. *)
let bounds = Array.init n_buckets (fun i -> bucket_ratio ** float_of_int (i + 1))

type t = {
  mutex : Mutex.t;
  sync : bool;
  hist : int array;
  mutable count : int;
  mutable sum : float;
  mutable max_q : float;
}

let create ?(sync = true) () =
  { mutex = Mutex.create (); sync; hist = Array.make n_buckets 0; count = 0;
    sum = 0.0; max_q = 0.0 }

let synchronized t = t.sync

let value ~est ~truth =
  let e = Float.max est 1.0 and t = Float.max truth 1.0 in
  Float.max (e /. t) (t /. e)

let bucket_of q =
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if q <= bounds.(mid) then search lo mid else search (mid + 1) hi
  in
  search 0 (n_buckets - 1)

let record_unlocked t q =
  t.hist.(bucket_of q) <- t.hist.(bucket_of q) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. q;
  if q > t.max_q then t.max_q <- q

let record t q =
  let q = Float.max q 1.0 in
  if t.sync then begin
    Mutex.lock t.mutex;
    record_unlocked t q;
    Mutex.unlock t.mutex
  end
  else record_unlocked t q

let observe t ~est ~truth = record t (value ~est ~truth)

let locked t f =
  if t.sync then begin
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f
  end
  else f ()

let merge_into ~into t =
  locked t (fun () ->
      let snap_hist = Array.copy t.hist in
      let snap_count = t.count and snap_sum = t.sum and snap_max = t.max_q in
      locked into (fun () ->
          Array.iteri
            (fun i n -> into.hist.(i) <- into.hist.(i) + n)
            snap_hist;
          into.count <- into.count + snap_count;
          into.sum <- into.sum +. snap_sum;
          if snap_max > into.max_q then into.max_q <- snap_max))

let count t = locked t (fun () -> t.count)

let mean t =
  locked t (fun () ->
      if t.count = 0 then Float.nan else t.sum /. float_of_int t.count)

let worst t = locked t (fun () -> if t.count = 0 then Float.nan else t.max_q)

let percentile_unlocked t p =
  if t.count = 0 then Float.nan
  else begin
    let target =
      int_of_float (ceil (p *. float_of_int t.count)) |> Int.max 1
    in
    let acc = ref 0 and i = ref 0 and edge = ref bounds.(n_buckets - 1) in
    (try
       while !i < n_buckets do
         acc := !acc + t.hist.(!i);
         if !acc >= target then begin
           edge := bounds.(!i);
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    !edge
  end

let percentile t p = locked t (fun () -> percentile_unlocked t p)

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max_q : float;
}

let summarize t =
  locked t (fun () ->
      { n = t.count;
        mean = (if t.count = 0 then Float.nan else t.sum /. float_of_int t.count);
        p50 = percentile_unlocked t 0.5;
        p90 = percentile_unlocked t 0.9;
        p99 = percentile_unlocked t 0.99;
        max_q = (if t.count = 0 then Float.nan else t.max_q) })

let buckets t =
  locked t (fun () ->
      let cum = ref 0 in
      Array.mapi
        (fun i n ->
          cum := !cum + n;
          (bounds.(i), !cum))
        t.hist)

let of_pairs pairs =
  let t = create () in
  List.iter (fun (truth, est) -> observe t ~est ~truth) pairs;
  t
