(** Per-domain lock-free telemetry: sharded counters and latency
    histograms merged on read.

    Each domain touching a {!t} owns a [Domain.DLS] shard of named
    monotonic counters and {!Histogram} latency histograms.  {!incr} and
    {!record_ns} run entirely on the caller's shard — no lock, no
    contended cache line — so writer domains scale linearly where a
    mutex-guarded recorder serializes.  The per-shard mutex guards only
    slot {e creation} (first use of a name in a shard) and the reader's
    slot listing, never a hot-path bump.

    The read side merges shard values on demand.  Value reads are racy
    by design: single-word (never torn) and monotone, so every snapshot
    is a consistent lower bound, and totals are exact as soon as writers
    quiesce or a happens-before edge exists (e.g. [Domain.join] in
    tests, the accept loop's synchronization in the server).
    {!snapshot} stamps each merge with a monotonically increasing epoch;
    {!Snapshot.delta} subtracts two snapshots into the window between
    their epochs — HEALTH's burn-rate windows are built on this. *)

type t

val create : unit -> t
(** A fresh telemetry instance with its own shard set.  Instances are
    independent: two servers in one process never share counters. *)

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter on the calling domain's shard (created at zero
    on first use).  Lock-free after the slot exists. *)

val record_ns : t -> string -> int -> unit
(** Record one latency sample (ns) into the named histogram on the
    calling domain's shard.  Zero-allocation after the slot exists. *)

(** {2 Handle API — the allocation-free hot path}

    {!incr} and {!record_ns} probe a string-keyed hashtable, which boxes
    the [find_opt] result — one minor allocation per bump.  Callers on a
    strict zero-allocation budget (the server's warm request path)
    register their slot names once at startup and bump through integer
    handles instead: the hot path indexes a per-shard flat array — a
    bounds check plus an int add or a {!Histogram.record}, nothing
    allocated, no optional arguments (which would box).  Handle slots
    merge into {!snapshot} / {!get} / {!hist_merged} under their
    registered names exactly like string-keyed slots; a name may be used
    through both APIs and the values add. *)

type counter_handle
type hist_handle

val counter_handle : t -> string -> counter_handle
(** Register (or look up) the named counter's handle.  Idempotent —
    the same name always yields the same handle.  Takes the registry
    lock; call at startup, not per request. *)

val hist_handle : t -> string -> hist_handle
(** Same, for a named histogram. *)

val hincr : t -> counter_handle -> unit
(** Bump the handle's counter on the calling domain's shard.  Allocates
    nothing once the shard's slot array covers the handle (first use
    grows it). *)

val hincr_by : t -> counter_handle -> int -> unit
(** [hincr] by an arbitrary amount (a plain argument — no option
    boxing). *)

val hrecord : t -> hist_handle -> int -> unit
(** Record one sample (ns) into the handle's histogram on the calling
    domain's shard.  Allocation-free once the slot array covers the
    handle. *)

val observe_qerror : t -> string -> est:float -> truth:float -> unit
(** Record one (estimate, truth) accuracy observation into the named
    {!Qerror} table on the calling domain's shard.  Lock-free after the
    slot exists: the shard-local table is created [~sync:false] and only
    the owner domain writes it. *)

val qerror_shard : t -> string -> Qerror.t
(** The calling domain's shard-local q-error table for [name] (created
    empty on first use).  Writes through the returned handle land in
    this domain's shard and are visible to {!qerrors_merged}. *)

val get : t -> string -> int
(** Merged value of a counter across all shards; 0 when never bumped. *)

val hist_merged : t -> string -> Histogram.t
(** Merged copy of a named histogram across all shards; empty when never
    recorded. *)

val qerror_merged : t -> string -> Qerror.t
(** Fresh merged copy of the named q-error table across all shards;
    empty when never observed.  Reads of unquiesced shards are racy but
    never torn. *)

val qerrors_merged : t -> (string * Qerror.t) list
(** Every observed q-error table name with its merged copy, sorted. *)

val n_shards : t -> int
(** Shards created so far (= domains that have written). *)

type snapshot = {
  epoch : int;  (** monotonically increasing per {!snapshot} call *)
  counters : (string * int) list;  (** merged, sorted by name *)
  hists : (string * Histogram.t) list;  (** merged copies, sorted *)
}

val snapshot : t -> snapshot
(** Merge every shard into one consistent-lower-bound snapshot.  Never
    blocks writers: only the rare slot-creation path shares the shard
    lock with this. *)

module Snapshot : sig
  val find_counter : snapshot -> string -> int
  val find_hist : snapshot -> string -> Histogram.t option

  val delta : prev:snapshot -> snapshot -> snapshot
  (** The window between two snapshots of the same instance: per-counter
      differences and bucket-wise histogram differences.  Slots absent
      from [prev] count from zero. *)
end
