(** Per-domain lock-free telemetry: sharded counters and latency
    histograms merged on read.

    Each domain touching a {!t} owns a [Domain.DLS] shard of named
    monotonic counters and {!Histogram} latency histograms.  {!incr} and
    {!record_ns} run entirely on the caller's shard — no lock, no
    contended cache line — so writer domains scale linearly where a
    mutex-guarded recorder serializes.  The per-shard mutex guards only
    slot {e creation} (first use of a name in a shard) and the reader's
    slot listing, never a hot-path bump.

    The read side merges shard values on demand.  Value reads are racy
    by design: single-word (never torn) and monotone, so every snapshot
    is a consistent lower bound, and totals are exact as soon as writers
    quiesce or a happens-before edge exists (e.g. [Domain.join] in
    tests, the accept loop's synchronization in the server).
    {!snapshot} stamps each merge with a monotonically increasing epoch;
    {!Snapshot.delta} subtracts two snapshots into the window between
    their epochs — HEALTH's burn-rate windows are built on this. *)

type t

val create : unit -> t
(** A fresh telemetry instance with its own shard set.  Instances are
    independent: two servers in one process never share counters. *)

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter on the calling domain's shard (created at zero
    on first use).  Lock-free after the slot exists. *)

val record_ns : t -> string -> int -> unit
(** Record one latency sample (ns) into the named histogram on the
    calling domain's shard.  Zero-allocation after the slot exists. *)

val get : t -> string -> int
(** Merged value of a counter across all shards; 0 when never bumped. *)

val hist_merged : t -> string -> Histogram.t
(** Merged copy of a named histogram across all shards; empty when never
    recorded. *)

val n_shards : t -> int
(** Shards created so far (= domains that have written). *)

type snapshot = {
  epoch : int;  (** monotonically increasing per {!snapshot} call *)
  counters : (string * int) list;  (** merged, sorted by name *)
  hists : (string * Histogram.t) list;  (** merged copies, sorted *)
}

val snapshot : t -> snapshot
(** Merge every shard into one consistent-lower-bound snapshot.  Never
    blocks writers: only the rare slot-creation path shares the shard
    lock with this. *)

module Snapshot : sig
  val find_counter : snapshot -> string -> int
  val find_hist : snapshot -> string -> Histogram.t option

  val delta : prev:snapshot -> snapshot -> snapshot
  (** The window between two snapshots of the same instance: per-counter
      differences and bucket-wise histogram differences.  Slots absent
      from [prev] count from zero. *)
end
