(** Prometheus text exposition (version 0.0.4), render and parse.

    Rendering covers the subset the [METRICS] verb needs: counters,
    gauges, and histograms with [# TYPE] comment lines, label sets, and
    cumulative [_bucket{le="..."}] / [_sum] / [_count] series.  The
    parser is deliberately tiny — just enough to round-trip our own
    output in tests and to let a client sanity-check a scrape — not a
    general exposition-format parser. *)

type metric =
  | Counter of {
      name : string;
      help : string;
      labels : (string * string) list;
      value : float;
    }
  | Gauge of {
      name : string;
      help : string;
      labels : (string * string) list;
      value : float;
    }
  | Histogram of {
      name : string;
      help : string;
      labels : (string * string) list;
      buckets : (float * int) array;
          (** (upper edge, {e cumulative} count), edges increasing; a
              final [+Inf] bucket equal to [count] is appended
              automatically when missing *)
      sum : float;
      count : int;
    }

val sanitize : string -> string
(** Map an internal metric name (e.g. ["ve.factor_ops"]) onto the legal
    charset [[a-zA-Z0-9_:]]; leading digits get a ['_'] prefix. *)

val render : metric list -> string
(** Exposition text.  Metrics sharing a name must be adjacent and of the
    same kind; the [# HELP] / [# TYPE] header is emitted once per name.
    Raises [Invalid_argument] on adjacent same-name kind conflicts. *)

type sample = {
  sample_name : string;  (** full series name, e.g. ["foo_bucket"] *)
  sample_labels : (string * string) list;
  sample_value : float;
}

val parse : string -> (string * string) list * sample list
(** [parse text] returns [(types, samples)]: the [# TYPE] declarations
    as [(metric name, "counter" | "gauge" | "histogram")] pairs in
    order, and every sample line.  Raises [Failure] on lines that are
    neither comments, blank, nor well-formed samples. *)

val find_sample :
  sample list -> name:string -> ?labels:(string * string) list -> unit ->
  float option
(** First sample matching [name] whose label set contains every pair in
    [labels] (default [[]]). *)
