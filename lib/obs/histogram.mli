(** HDR-style log-bucketed histogram over integer nanoseconds.

    Fixed bucket layout spanning 1 ns to ~68.7 s: exact unit buckets
    below 128 ns, then 128 linear sub-buckets per power-of-two octave, so
    quantile answers carry at most 1/128 < 0.8% relative quantization
    error anywhere in the range.  {!record} mutates only preallocated
    integer state — zero heap allocation, no float boxing — which is what
    lets every request of a hot loop feed one of these.

    A histogram value is single-writer; the cross-domain read side is
    {!merge_into} / {!copy} / {!diff} over shard snapshots
    ({!Telemetry}).  Racy reads of a live histogram never tear (every
    field is one word) but may lag the writer by the few records in
    flight; merged values are exact once writers quiesce. *)

type t

val sub_bits : int
(** Sub-bucket resolution: {!half}[ = 2^sub_bits] linear sub-buckets per
    octave, bounding relative error by [1/half]. *)

val half : int
val n_buckets : int

val max_ns : int
(** Largest representable sample; larger values clamp into the top
    bucket. *)

val create : unit -> t
val clear : t -> unit

val record : t -> int -> unit
(** Record one sample in nanoseconds (clamped to [\[0, max_ns\]]).
    Zero-allocation. *)

val index_of_ns : int -> int
(** The bucket holding a value — exposed for tests of the bucket math. *)

val lower_ns : int -> int
(** Inclusive lower edge of a bucket, in ns. *)

val upper_ns : int -> int
(** Inclusive upper edge of a bucket, in ns.
    [lower_ns (index_of_ns v) <= v <= upper_ns (index_of_ns v)]. *)

val count : t -> int
val sum_ns : t -> int
val max_ns_seen : t -> int

val mean_ns : t -> float
(** Exact mean from the running sum — no bucket quantization. *)

val quantile_ns : t -> float -> int
(** [quantile_ns t 0.99]: upper edge of the bucket holding the p-th
    quantile (overstating by < 0.8%), clamped to the largest sample seen;
    0 when empty.  Raises [Invalid_argument] outside [0,1]. *)

val count_le : t -> int -> int
(** Samples at or below a value — the numerator of an SLO compliance
    ratio. *)

val merge_into : into:t -> t -> unit
(** Bucket-wise addition of counts, count, sum and max. *)

val copy : t -> t

val diff : prev:t -> t -> t
(** Bucket-wise [cur - prev] between two snapshots of the same monotone
    stream: the histogram of just the window's samples. *)

val buckets_us : t -> (float * int) array
(** Cumulative [(upper edge in µs, count)] coarsened to one bucket per
    octave — Prometheus-ready without exploding the text exposition. *)

val nonzero : t -> string
(** Non-empty raw buckets as ["index:count,..."], or ["-"] when empty. *)
