type record = {
  name : string;
  id : int;
  parent : int;
  depth : int;
  start_ns : int;
  end_ns : int;
  attrs : (string * string) list;
}

type sink = record -> unit

type t = {
  s_name : string;
  s_id : int;
  s_parent : int;
  s_depth : int;
  s_start : int;
  mutable s_attrs : (string * string) list;  (* accumulated reversed *)
  s_live : bool;
}

let null =
  { s_name = ""; s_id = 0; s_parent = 0; s_depth = 0; s_start = 0;
    s_attrs = []; s_live = false }

(* Per-domain open-span bookkeeping.  Ids are seeded from the domain id
   so two domains never hand out the same id within one trace log. *)
type dstate = {
  mutable local_sink : sink option;
  mutable cur_id : int;
  mutable cur_depth : int;
  mutable next_id : int;
}

let dkey =
  Domain.DLS.new_key (fun () ->
      { local_sink = None;
        cur_id = 0;
        cur_depth = 0;
        next_id = (((Domain.self () :> int) land 0xfff) lsl 40) lor 1 })

let state () = Domain.DLS.get dkey

let global_sink : sink option Atomic.t = Atomic.make None
let set_global_sink s = Atomic.set global_sink s

(* No structural equality on [sink option]: sinks are closures. *)
let no_sink = function None -> true | Some _ -> false

let enabled () =
  (not (no_sink (state ()).local_sink)) || not (no_sink (Atomic.get global_sink))

let collecting () = not (no_sink (state ()).local_sink)

let live sp = sp.s_live

let add sp key value = if sp.s_live then sp.s_attrs <- (key, value) :: sp.s_attrs

let emit st r =
  (match st.local_sink with Some f -> f r | None -> ());
  match Atomic.get global_sink with Some f -> f r | None -> ()

(* Top-level rather than a closure inside [with_]: closing is on the
   traced hot path and a per-span closure allocation buys nothing. *)
let close st sp =
  st.cur_id <- sp.s_parent;
  st.cur_depth <- sp.s_depth;
  emit st
    { name = sp.s_name; id = sp.s_id; parent = sp.s_parent; depth = sp.s_depth;
      start_ns = sp.s_start; end_ns = Clock.now_ns ();
      attrs = List.rev sp.s_attrs }

let with_ ?(attrs = []) name f =
  let st = state () in
  if no_sink st.local_sink && no_sink (Atomic.get global_sink) then f null
  else begin
    let id = st.next_id in
    st.next_id <- id + 1;
    let sp =
      { s_name = name; s_id = id; s_parent = st.cur_id; s_depth = st.cur_depth;
        s_start = Clock.now_ns ();
        s_attrs = List.rev attrs;
        s_live = true }
    in
    st.cur_id <- id;
    st.cur_depth <- st.cur_depth + 1;
    match f sp with
    | x -> close st sp; x
    | exception e -> close st sp; raise e
  end

let collect f =
  let st = state () in
  let buf = ref [] in
  let saved = st.local_sink in
  st.local_sink <- Some (fun r -> buf := r :: !buf);
  let restore () = st.local_sink <- saved in
  match f () with
  | x -> restore (); (x, List.rev !buf)
  | exception e -> restore (); raise e

let duration_us r = Clock.ns_to_us (r.end_ns - r.start_ns)
