(* Tail-sampled slow-log: a bounded ring of captured outlier requests.

   Entries are appended when the server decides a request is worth
   keeping — its latency crossed the quantile-derived threshold, or its
   TRUTH-reported q-error crossed the accuracy gate — and carry the
   canonical query, the trigger metadata and a span tree.  Captures are
   rare by construction (tail sampling plus the server's rate limiter),
   so a single mutex around the ring costs nothing on the request path:
   the hot path never touches this module at all. *)

type reason = Latency | Qerror

let reason_to_string = function Latency -> "latency" | Qerror -> "qerror"

type entry = {
  seq : int; (* capture number, 1-based, monotonically increasing *)
  verb : string;
  reason : reason;
  query : string; (* canonical query, or the raw line when unparseable *)
  lat_ns : int; (* the original request's latency *)
  threshold_ns : int; (* the latency threshold in force at capture time *)
  qerror : float option; (* for q-error-gated captures *)
  spans : Span.record list; (* captured span tree (emission order) *)
}

type t = {
  lock : Mutex.t;
  ring : entry option array;
  mutable next : int; (* ring slot the next entry lands in *)
  mutable total : int; (* entries ever captured *)
}

let create ?(capacity = 128) () =
  if capacity <= 0 then invalid_arg "Slowlog.create: capacity must be positive";
  { lock = Mutex.create (); ring = Array.make capacity None; next = 0; total = 0 }

let capacity t = Array.length t.ring

let add t ~verb ~reason ~query ~lat_ns ~threshold_ns ?qerror ~spans () =
  Mutex.lock t.lock;
  t.total <- t.total + 1;
  let e =
    { seq = t.total; verb; reason; query; lat_ns; threshold_ns; qerror; spans }
  in
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.ring;
  Mutex.unlock t.lock;
  e.seq

let total t =
  Mutex.lock t.lock;
  let n = t.total in
  Mutex.unlock t.lock;
  n

let length t =
  Mutex.lock t.lock;
  let n = min t.total (Array.length t.ring) in
  Mutex.unlock t.lock;
  n

(* Newest first: walk the ring backwards from the slot before [next]. *)
let recent ?n t =
  Mutex.lock t.lock;
  let cap = Array.length t.ring in
  let stored = min t.total cap in
  let want = match n with None -> stored | Some k -> min (max 0 k) stored in
  let out = ref [] in
  for i = 0 to want - 1 do
    let slot = ((t.next - 1 - i) mod cap + cap) mod cap in
    match t.ring.(slot) with Some e -> out := e :: !out | None -> ()
  done;
  Mutex.unlock t.lock;
  List.rev !out
