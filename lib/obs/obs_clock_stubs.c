/* Monotonic clock for span timing.  CLOCK_MONOTONIC survives wall-clock
   adjustments (NTP slews, manual resets), which matters because span
   durations are differences of raw readings taken milliseconds apart.

   The native-code entry returns an untagged intnat and is [@@noalloc]:
   two clock reads bracket every traced span, so a boxed or tagged
   result would put allocations on the hot path for nothing.  63 bits of
   nanoseconds since boot is ~292 years — no overflow concern. */

#include <stdint.h>
#include <time.h>

#include <caml/mlvalues.h>

CAMLprim intnat selest_obs_clock_ns_untagged(value unit)
{
  (void)unit;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (intnat)((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}

CAMLprim value selest_obs_clock_ns(value unit)
{
  return Val_long(selest_obs_clock_ns_untagged(unit));
}
