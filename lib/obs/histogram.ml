(* HDR-style log-bucketed latency histogram over integer nanoseconds.

   Layout: values below [half] (128 ns) get one exact bucket each; above
   that, each power-of-two octave is split into [half] linear sub-buckets,
   so a bucket spanning [v, v + 2^s) starts at v >= half * 2^s and the
   relative quantization error is bounded by 1/half < 0.8%.  The range is
   capped at [max_ns] (~68.7 s) — far beyond any request this service
   could answer — giving a fixed 3840-bucket array (~30 KB).

   [record] touches only preallocated integer state (array bump, three
   int fields): zero heap allocation, no float boxing — safe to call on
   every request of a hot loop.

   A histogram is owned by one writer; [merge_into] and [diff] build the
   cross-shard read side.  Cross-domain reads of a live histogram are
   racy-but-sound: every field is a single word (no tearing), counts are
   monotone, and [n]/[sum_ns] may momentarily disagree with the bucket
   array by the few writes in flight. *)

let sub_bits = 7
let half = 1 lsl sub_bits (* 128 sub-buckets per octave *)

(* Largest representable value: 2^36 - 1 ns ≈ 68.7 s.  Larger samples are
   clamped into the top bucket. *)
let max_ns = (1 lsl 36) - 1

(* Octave groups: values < half are group 0; the top group holds msb 35. *)
let n_groups = 36 - sub_bits + 1
let n_buckets = n_groups * half

type t = {
  counts : int array;
  mutable n : int;
  mutable sum_ns : int;
  mutable max_seen : int;
}

let create () = { counts = Array.make n_buckets 0; n = 0; sum_ns = 0; max_seen = 0 }

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.n <- 0;
  t.sum_ns <- 0;
  t.max_seen <- 0

let index_of_ns v =
  let v = if v < 0 then 0 else if v > max_ns then max_ns else v in
  if v < half then v
  else begin
    (* shift v down to [half, 2*half); the shift count is the octave *)
    let x = ref v and s = ref 0 in
    while !x >= 2 * half do
      x := !x lsr 1;
      incr s
    done;
    ((!s + 1) * half) + (!x - half)
  end

let lower_ns i =
  if i < half then i
  else
    let s = (i / half) - 1 and sub = i mod half in
    (half + sub) lsl s

let upper_ns i =
  if i < half then i
  else
    let s = (i / half) - 1 in
    lower_ns i + (1 lsl s) - 1

let record t v =
  let v = if v < 0 then 0 else if v > max_ns then max_ns else v in
  let i = index_of_ns v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum_ns <- t.sum_ns + v;
  if v > t.max_seen then t.max_seen <- v

let count t = t.n
let sum_ns t = t.sum_ns
let max_ns_seen t = t.max_seen

let mean_ns t = if t.n = 0 then 0.0 else float_of_int t.sum_ns /. float_of_int t.n

let quantile_ns t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Histogram.quantile_ns: p outside [0,1]";
  if t.n = 0 then 0
  else begin
    let target = max 1 (int_of_float (ceil (p *. float_of_int t.n))) in
    let seen = ref 0 and answer = ref t.max_seen and i = ref 0 in
    (try
       while !i < n_buckets do
         seen := !seen + t.counts.(!i);
         if !seen >= target then begin
           answer := upper_ns !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    !answer
  end

(* Count of samples at or below [v] ns — the cumulative side of the SLO
   burn computation (how many requests met a latency target). *)
let count_le t v =
  if v >= t.max_seen && t.n > 0 then t.n
  else begin
    let hi = index_of_ns v in
    let acc = ref 0 in
    for i = 0 to hi do
      acc := !acc + t.counts.(i)
    done;
    !acc
  end

let merge_into ~into t =
  for i = 0 to n_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + t.counts.(i)
  done;
  into.n <- into.n + t.n;
  into.sum_ns <- into.sum_ns + t.sum_ns;
  if t.max_seen > into.max_seen then into.max_seen <- t.max_seen

let copy t =
  let c = create () in
  merge_into ~into:c t;
  c

(* Bucket-wise [cur - prev]; both monotone snapshots of the same stream,
   so the difference is itself a valid histogram (the window's samples).
   The max is unrecoverable from a subtraction — keep the window upper
   bound [cur.max_seen]. *)
let diff ~prev cur =
  let d = create () in
  for i = 0 to n_buckets - 1 do
    d.counts.(i) <- max 0 (cur.counts.(i) - prev.counts.(i))
  done;
  d.n <- max 0 (cur.n - prev.n);
  d.sum_ns <- max 0 (cur.sum_ns - prev.sum_ns);
  d.max_seen <- cur.max_seen;
  d

(* Prometheus-ready cumulative buckets, coarsened to octave edges: full
   sub-bucket resolution (3840 series per histogram) would bloat the text
   exposition, and dashboards only need log-scale shape.  One bucket per
   octave group, upper edge in microseconds. *)
let buckets_us t =
  let edges = Array.init n_groups (fun g -> upper_ns (((g + 1) * half) - 1)) in
  let cum = ref 0 and gi = ref 0 in
  Array.init n_groups (fun g ->
      let top = ((g + 1) * half) - 1 in
      while !gi <= top do
        cum := !cum + t.counts.(!gi);
        incr gi
      done;
      (float_of_int edges.(g) /. 1e3, !cum))

(* Non-empty raw buckets as "index:count,...": the dashboard re-bucketing
   escape hatch STATS has always exposed. *)
let nonzero t =
  let parts = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then parts := Printf.sprintf "%d:%d" i t.counts.(i) :: !parts
  done;
  match !parts with [] -> "-" | ps -> String.concat "," ps
