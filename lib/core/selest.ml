module Util = Selest_util
module Obs = Selest_obs
module Prob = Selest_prob
module Db = Selest_db
module Synth = Selest_synth
module Bn = Selest_bn

module Prm = struct
  include Selest_prm
  module Estimate = Selest_plan.Estimate
end

module Plan = Selest_plan.Plan
module Est = Selest_est
module Opt = Selest_opt
module Workload = Selest_workload
module Serve = Selest_serve

let learn_bn ?(budget_bytes = 8192) ?(kind = Selest_bn.Cpd.Trees)
    ?(rule = Selest_bn.Learn.Ssn) ?(seed = 0) table =
  let data = Selest_bn.Data.of_table table in
  Selest_bn.Learn.learn_bn ~budget_bytes ~kind ~rule ~seed data

let learn_prm ?(budget_bytes = 8192) ?(seed = 0) db =
  Selest_prm.Learn.learn_prm ~budget_bytes ~seed db

let estimate model db q =
  Selest_plan.Estimate.estimate model
    ~sizes:(Selest_plan.Estimate.sizes_of_db db) q

let prm_estimator ~budget_bytes ?(seed = 0) db =
  Selest_est.Prm_est.build ~budget_bytes ~seed db

let true_size db q = Selest_db.Exec.query_size db q
