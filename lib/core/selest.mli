(** Selest: selectivity estimation with probabilistic models.

    An OCaml implementation of Getoor, Taskar & Koller, {e "Selectivity
    Estimation using Probabilistic Models"}, SIGMOD 2001: Bayesian networks
    for single-table select selectivity, probabilistic relational models
    (PRMs) for select–foreign-key-join selectivity, and the paper's
    baselines (AVI, MHIST, SAMPLE, BN+UJ) behind one estimator interface.

    {2 Quick start}

    {[
      let db = Selest.Synth.Census.generate ~rows:50_000 ~seed:1 () in
      let est = Selest.prm_estimator ~budget_bytes:4096 db in
      let q =
        Selest.Db.Query.create
          ~tvars:[ ("t", "person") ]
          ~selects:[ Selest.Db.Query.eq "t" "Income" 7 ]
          ()
      in
      Printf.printf "estimated size: %.1f\n" (est.Selest.Est.Estimator.estimate q)
    ]}

    The submodules below re-export the full library; see each module's own
    documentation. *)

(** {1 Library layers} *)

module Util = Selest_util
module Obs = Selest_obs
module Prob = Selest_prob
module Db = Selest_db
module Synth = Selest_synth
module Bn = Selest_bn

(** The PRM layer plus the estimation entry points, which live in
    [lib/plan] (they are wrappers over the compiled plan IR) but keep
    their historical [Prm.Estimate] address. *)
module Prm : sig
  include module type of struct
    include Selest_prm
  end

  module Estimate = Selest_plan.Estimate
end

module Plan = Selest_plan.Plan
module Est = Selest_est
module Opt = Selest_opt
module Workload = Selest_workload
module Serve = Selest_serve

(** {1 One-call pipelines} *)

val learn_bn :
  ?budget_bytes:int -> ?kind:Selest_bn.Cpd.kind -> ?rule:Selest_bn.Learn.rule ->
  ?seed:int -> Selest_db.Table.t -> Selest_bn.Bn.t
(** Learn a Bayesian network over one table's attributes (offline phase,
    single-table case). *)

val learn_prm :
  ?budget_bytes:int -> ?seed:int -> Selest_db.Database.t -> Selest_prm.Model.t
(** Learn a full PRM over a database (offline phase, relational case). *)

val estimate :
  Selest_prm.Model.t -> Selest_db.Database.t -> Selest_db.Query.t -> float
(** Online phase: estimated result size of a select–keyjoin query. *)

val prm_estimator :
  budget_bytes:int -> ?seed:int -> Selest_db.Database.t -> Selest_est.Estimator.t
(** Learn a PRM and package it behind the common estimator interface. *)

val true_size : Selest_db.Database.t -> Selest_db.Query.t -> float
(** Exact result size (for validation; scans the database). *)
