(** Zero-copy request parsing for the serve front-end.

    Lexes the textual query syntax (see {!Qparse}) directly out of a
    request buffer into a reusable scratch query: symbols are interned
    against a per-schema {!Symtab.t}, predicates land in growable int
    arrays, and nothing on the warm path allocates.  Acceptance agrees
    with the reference pipeline ([Qparse.parse], {!Query.create},
    [Exec.validate]): a body parses here iff the reference accepts it,
    and [to_query] materializes exactly the reference's canonical
    query. *)

(** Interned schema symbols: table / attribute / foreign-key / value
    ids resolvable from byte slices without allocating.  Immutable;
    build once per schema and share across domains. *)
module Symtab : sig
  type t

  val of_schema : Schema.t -> t
  val table_name : t -> int -> string
end

type t
(** Reusable scratch query.  Not thread-safe: one per shard. *)

val create : Symtab.t -> t
val symtab : t -> Symtab.t

val parse : t -> Bytes.t -> off:int -> len:int -> unit
(** Parse [buf[off..off+len)] as a query body ([tvars ; joins ;
    selects]) into the scratch, replacing its previous contents.  The
    buffer is borrowed: slices into it stay live until the next
    [parse].  Raises [Failure] with a descriptive message on any
    syntax or schema error (same acceptance as the reference
    pipeline).  Allocation-free on success. *)

val canon : t -> unit
(** Canonicalize in place ({!Canon.normalize} semantics): set values
    sort + dedup, singleton sets and one-point ranges collapse to Eq,
    tuple variables sort by name, joins and selects sort + dedup.
    Allocation-free once the scratch has warmed up. *)

val hash : t -> int
(** 63-bit FNV hash of the canonical content (call after [canon]).
    Equal canonical queries hash equal; never negative. *)

val n_selects : t -> int

(** Immutable canonical snapshot of a scratch, stored beside cache
    entries so hash hits can be verified without allocating. *)
module Vec : sig
  type scratch = t
  type t

  val of_scratch : scratch -> t
  (** Allocates; call on the miss path after [canon]. *)

  val empty : t
  (** Matches no scratch — a placeholder for cache sentinels. *)

  val matches : t -> scratch -> bool
  (** Full-key equality against a canonicalized scratch.
      Allocation-free. *)

  val equal : t -> t -> bool
  (** Structural equality of two snapshots.  Allocation-free. *)

  val bytes : t -> int
  (** Approximate heap footprint, for cache accounting. *)
end

val to_query : t -> Query.t
(** Materialize the canonical query (call after [canon]).  Equals
    [Canon.normalize (Qparse.parse ...)] of the same body, including
    list orderings. *)
