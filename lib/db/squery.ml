(* Zero-copy request parsing (the serve front-end's hot path).

   [Qparse] builds a [Query.t] out of intermediate strings and lists —
   fine for the CLI, but on a warm served EST it is the dominant
   allocation source.  This module lexes the same textual query syntax
   directly out of the request buffer into a reusable scratch query:
   table/attribute/value symbols are interned once per schema into
   open-addressed slice-lookup tables, predicates land in growable int
   arrays, and canonicalization sorts those arrays in place.  After
   [parse] + [canon] the scratch yields a 63-bit canonical hash (cache
   key), an immutable [Vec.t] (stored beside cache entries for full-key
   verification on hash collision), and — on cache misses only — a
   materialized [Query.t] equal to what the legacy
   [Canon.normalize (Qparse.parse ...)] pipeline produces.

   Acceptance must agree with the reference pipeline: every check in
   [Query.create] and [Exec.validate] is replicated here (duplicate
   tuple variables, undeclared references, unknown symbols, value
   bounds, empty or non-ordinal ranges, foreign-key targets, keyjoin
   forest shape, twice-bound foreign keys), so a body is accepted by
   this parser iff the reference accepts it. *)

let fail fmt = Printf.ksprintf failwith fmt

let is_space c =
  c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012'

(* ------------------------------------------------------------------ *)
(* Interned symbol tables: string -> small int, probed either with a
   whole string (build/slow path) or with a byte slice (hot path, no
   allocation).  Linear probing over a power-of-two table; values are
   >= 0, so -1 marks an empty slot. *)

module Strmap = struct
  type t = { mask : int; keys : string array; vals : int array }

  let hash_str s =
    let h = ref 0x811c9dc5 in
    String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193) s;
    !h land max_int

  let hash_slice b off len =
    let h = ref 0x811c9dc5 in
    for i = off to off + len - 1 do
      h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193
    done;
    !h land max_int

  let create n =
    let cap = ref 8 in
    while !cap < 2 * (n + 1) do
      cap := !cap * 2
    done;
    { mask = !cap - 1; keys = Array.make !cap ""; vals = Array.make !cap (-1) }

  let add t key v =
    if v < 0 then invalid_arg "Squery.Strmap.add: negative value";
    let i = ref (hash_str key land t.mask) in
    while t.vals.(!i) >= 0 do
      if t.keys.(!i) = key then invalid_arg "Squery.Strmap.add: duplicate key";
      i := (!i + 1) land t.mask
    done;
    t.keys.(!i) <- key;
    t.vals.(!i) <- v

  let slice_eq s b off len =
    String.length s = len
    &&
    let ok = ref true in
    for i = 0 to len - 1 do
      if String.unsafe_get s i <> Bytes.unsafe_get b (off + i) then ok := false
    done;
    !ok

  (* [find_slice t b off len] is the value bound to [b[off..off+len)],
     or -1.  No allocation. *)
  let find_slice t b off len =
    let i = ref (hash_slice b off len land t.mask) in
    let r = ref (-2) in
    while !r = -2 do
      if t.vals.(!i) < 0 then r := -1
      else if slice_eq t.keys.(!i) b off len then r := t.vals.(!i)
      else i := (!i + 1) land t.mask
    done;
    !r

  let find_str t s =
    let i = ref (hash_str s land t.mask) in
    let r = ref (-2) in
    while !r = -2 do
      if t.vals.(!i) < 0 then r := -1
      else if String.equal t.keys.(!i) s then r := t.vals.(!i)
      else i := (!i + 1) land t.mask
    done;
    !r
end

(* ------------------------------------------------------------------ *)
(* The schema's symbols, interned once (at server start).  Immutable
   and safely shared across domains. *)

module Symtab = struct
  type t = {
    tables : Strmap.t;
    tnames : string array;
    attrs : Strmap.t array;  (* per table: attr name -> attr idx *)
    anames : string array array;
    fkmaps : Strmap.t array;  (* per table: fk name -> fk idx *)
    fknames : string array array;
    fk_target : int array array;  (* per table, fk idx -> target table idx *)
    values : Strmap.t array array;  (* per table, attr idx: label -> code *)
    cards : int array array;
    ordinal : bool array array;
  }

  let of_schema schema =
    let ts = Schema.tables schema in
    let nt = Array.length ts in
    let tables = Strmap.create nt in
    Array.iteri (fun i t -> Strmap.add tables t.Schema.tname i) ts;
    let tnames = Array.map (fun t -> t.Schema.tname) ts in
    let attrs =
      Array.map
        (fun t ->
          let m = Strmap.create (Array.length t.Schema.attrs) in
          Array.iteri (fun i a -> Strmap.add m a.Schema.aname i) t.Schema.attrs;
          m)
        ts
    in
    let anames =
      Array.map (fun t -> Array.map (fun a -> a.Schema.aname) t.Schema.attrs) ts
    in
    let fkmaps =
      Array.map
        (fun t ->
          let m = Strmap.create (Array.length t.Schema.fks) in
          Array.iteri (fun i f -> Strmap.add m f.Schema.fkname i) t.Schema.fks;
          m)
        ts
    in
    let fknames =
      Array.map (fun t -> Array.map (fun f -> f.Schema.fkname) t.Schema.fks) ts
    in
    let fk_target =
      Array.map
        (fun t ->
          Array.map
            (fun f ->
              match Strmap.find_str tables f.Schema.target with
              | -1 -> invalid_arg "Squery.Symtab: foreign key targets unknown table"
              | i -> i)
            t.Schema.fks)
        ts
    in
    let values =
      Array.map
        (fun t ->
          Array.map
            (fun a ->
              let labels = a.Schema.domain.Value.labels in
              let m = Strmap.create (Array.length labels) in
              Array.iteri (fun code l -> Strmap.add m l code) labels;
              m)
            t.Schema.attrs)
        ts
    in
    let cards =
      Array.map
        (fun t -> Array.map (fun a -> Value.card a.Schema.domain) t.Schema.attrs)
        ts
    in
    let ordinal =
      Array.map
        (fun t ->
          Array.map (fun a -> Value.is_ordinal a.Schema.domain) t.Schema.attrs)
        ts
    in
    {
      tables;
      tnames;
      attrs;
      anames;
      fkmaps;
      fknames;
      fk_target;
      values;
      cards;
      ordinal;
    }

  let table_name t i = t.tnames.(i)
end

(* ------------------------------------------------------------------ *)
(* The reusable scratch query.  Tuple-variable names stay as slices
   into the borrowed request buffer; everything else is interned ids.
   Selects: kind 0 = Eq (operand in [lo]), 1 = Range ([lo]..[hi]),
   2 = In_set ([lo] = offset into [pool], [hi] = count). *)

type t = {
  tab : Symtab.t;
  mutable buf : Bytes.t;  (* borrowed; valid until the next [parse] *)
  mutable n_tv : int;
  mutable tv_off : int array;
  mutable tv_len : int array;
  mutable tv_tbl : int array;
  mutable n_j : int;
  mutable j_child : int array;
  mutable j_fk : int array;
  mutable j_parent : int array;
  mutable n_s : int;
  mutable s_tv : int array;
  mutable s_attr : int array;
  mutable s_kind : int array;
  mutable s_lo : int array;
  mutable s_hi : int array;
  mutable pool : int array;
  mutable pool_len : int;
  (* canonicalization scratch *)
  mutable perm : int array;
  mutable inv : int array;
  mutable tmp_a : int array;
  mutable tmp_b : int array;
  mutable tmp_c : int array;
  mutable uf : int array;
  (* [Vec.matches] cursor — record fields rather than let-bound refs so
     the comparison needs no closure and allocates nothing *)
  mutable m_w : int;
  mutable m_no : int;
  mutable m_ok : bool;
}

let create tab =
  {
    tab;
    buf = Bytes.empty;
    n_tv = 0;
    tv_off = Array.make 8 0;
    tv_len = Array.make 8 0;
    tv_tbl = Array.make 8 0;
    n_j = 0;
    j_child = Array.make 8 0;
    j_fk = Array.make 8 0;
    j_parent = Array.make 8 0;
    n_s = 0;
    s_tv = Array.make 16 0;
    s_attr = Array.make 16 0;
    s_kind = Array.make 16 0;
    s_lo = Array.make 16 0;
    s_hi = Array.make 16 0;
    pool = Array.make 32 0;
    pool_len = 0;
    perm = Array.make 8 0;
    inv = Array.make 8 0;
    tmp_a = Array.make 16 0;
    tmp_b = Array.make 16 0;
    tmp_c = Array.make 16 0;
    uf = Array.make 8 0;
    m_w = 0;
    m_no = 0;
    m_ok = true;
  }

let symtab t = t.tab

let grow a n =
  if Array.length a > n then a
  else begin
    let b = Array.make (max (2 * Array.length a) (n + 1)) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* ---- slice helpers (ints in, ints out: nothing boxes) ------------- *)

let trim_start b off lim =
  let i = ref off in
  while !i < lim && is_space (Bytes.unsafe_get b !i) do
    incr i
  done;
  !i

let trim_end b off lim =
  let j = ref lim in
  while !j > off && is_space (Bytes.unsafe_get b (!j - 1)) do
    decr j
  done;
  !j

let find_char b off lim c =
  let i = ref off in
  let r = ref (-1) in
  while !r < 0 && !i < lim do
    if Bytes.unsafe_get b !i = c then r := !i else incr i
  done;
  !r

let slices_eq b o1 l1 o2 l2 =
  l1 = l2
  &&
  let ok = ref true in
  for i = 0 to l1 - 1 do
    if Bytes.unsafe_get b (o1 + i) <> Bytes.unsafe_get b (o2 + i) then ok := false
  done;
  !ok

(* error-path only: materialize a slice for a message *)
let sub t o e = Bytes.sub_string t.buf o (e - o)

(* ---- item parsers ------------------------------------------------- *)

let tv_find t o e =
  let len = e - o in
  let r = ref (-1) in
  for k = 0 to t.n_tv - 1 do
    if !r < 0 && slices_eq t.buf t.tv_off.(k) t.tv_len.(k) o len then r := k
  done;
  !r

let push_tvar t o e tbl =
  t.tv_off <- grow t.tv_off t.n_tv;
  t.tv_len <- grow t.tv_len t.n_tv;
  t.tv_tbl <- grow t.tv_tbl t.n_tv;
  t.tv_off.(t.n_tv) <- o;
  t.tv_len.(t.n_tv) <- e - o;
  t.tv_tbl.(t.n_tv) <- tbl;
  t.n_tv <- t.n_tv + 1

let parse_tvar_item t o e =
  let eq = find_char t.buf o e '=' in
  let tvo = if eq < 0 then o else trim_start t.buf o eq in
  let tve = if eq < 0 then e else trim_end t.buf tvo eq in
  let tbo = if eq < 0 then tvo else trim_start t.buf (eq + 1) e in
  let tbe = if eq < 0 then tve else trim_end t.buf tbo e in
  if tv_find t tvo tve >= 0 then
    fail "Query.create: duplicate tuple variable %s" (sub t tvo tve);
  let ti = Strmap.find_slice t.tab.Symtab.tables t.buf tbo (tbe - tbo) in
  if ti < 0 then
    fail "Exec.validate: unknown table %s for %s" (sub t tbo tbe) (sub t tvo tve);
  push_tvar t tvo tve ti

(* Error raisers are top-level so the success path never builds their
   closures — [parse] must not allocate on acceptance. *)
let bad_join t o e = fail "join %S: expected child.fk=parent" (sub t o e)

let parse_join_item t o e =
  let eq = find_char t.buf o e '=' in
  if eq < 0 then bad_join t o e;
  let lo = trim_start t.buf o eq in
  let le = trim_end t.buf lo eq in
  let po = trim_start t.buf (eq + 1) e in
  let pe = trim_end t.buf po e in
  let dot = find_char t.buf lo le '.' in
  if dot < 0 then bad_join t o e;
  let co = trim_start t.buf lo dot in
  let ce = trim_end t.buf co dot in
  let fo = trim_start t.buf (dot + 1) le in
  let fe = trim_end t.buf fo le in
  let child = tv_find t co ce in
  if child < 0 then
    fail "Query.create: join references undeclared tuple variable %s" (sub t co ce);
  let parent = tv_find t po pe in
  if parent < 0 then
    fail "Query.create: join references undeclared tuple variable %s" (sub t po pe);
  if child = parent then
    failwith "Query.create: self-join through a foreign key is not a keyjoin";
  let cti = t.tv_tbl.(child) in
  let fk = Strmap.find_slice t.tab.Symtab.fkmaps.(cti) t.buf fo (fe - fo) in
  if fk < 0 then
    fail "Exec.validate: no foreign key %s in %s" (sub t fo fe)
      t.tab.Symtab.tnames.(cti);
  let target = t.tab.Symtab.fk_target.(cti).(fk) in
  if target <> t.tv_tbl.(parent) then
    fail "Exec.validate: %s.%s targets %s, not %s" t.tab.Symtab.tnames.(cti)
      t.tab.Symtab.fknames.(cti).(fk)
      t.tab.Symtab.tnames.(target)
      t.tab.Symtab.tnames.(t.tv_tbl.(parent));
  t.j_child <- grow t.j_child t.n_j;
  t.j_fk <- grow t.j_fk t.n_j;
  t.j_parent <- grow t.j_parent t.n_j;
  t.j_child.(t.n_j) <- child;
  t.j_fk.(t.n_j) <- fk;
  t.j_parent.(t.n_j) <- parent;
  t.n_j <- t.n_j + 1

(* Value lexing mirrors [Qparse.value_code]: label first, then an
   integer literal (sign + decimal digits, '_' separators) bounds-
   checked against the domain. *)
let unknown_value t o e = fail "unknown value %S" (sub t o e)

let value_code t ti ai o e =
  let o = trim_start t.buf o e in
  let e = trim_end t.buf o e in
  let v = Strmap.find_slice t.tab.Symtab.values.(ti).(ai) t.buf o (e - o) in
  if v >= 0 then v
  else begin
    let card = t.tab.Symtab.cards.(ti).(ai) in
    if o >= e then unknown_value t o e;
    let i = ref o in
    let neg = Bytes.unsafe_get t.buf o = '-' in
    if neg || Bytes.unsafe_get t.buf o = '+' then incr i;
    if !i >= e || not ('0' <= Bytes.unsafe_get t.buf !i && Bytes.unsafe_get t.buf !i <= '9')
    then unknown_value t o e;
    let acc = ref 0 and digits = ref 0 and ok = ref true in
    while !i < e do
      let c = Bytes.unsafe_get t.buf !i in
      if '0' <= c && c <= '9' then begin
        acc := (!acc * 10) + (Char.code c - Char.code '0');
        incr digits
      end
      else if c <> '_' then ok := false;
      incr i
    done;
    if (not !ok) || !digits = 0 || !digits > 18 then unknown_value t o e;
    let v = if neg then - !acc else !acc in
    if v >= 0 && v < card then v
    else fail "value %d out of domain [0,%d)" v card
  end

let push_sel t tv attr kind lo hi =
  t.s_tv <- grow t.s_tv t.n_s;
  t.s_attr <- grow t.s_attr t.n_s;
  t.s_kind <- grow t.s_kind t.n_s;
  t.s_lo <- grow t.s_lo t.n_s;
  t.s_hi <- grow t.s_hi t.n_s;
  t.s_tv.(t.n_s) <- tv;
  t.s_attr.(t.n_s) <- attr;
  t.s_kind.(t.n_s) <- kind;
  t.s_lo.(t.n_s) <- lo;
  t.s_hi.(t.n_s) <- hi;
  t.n_s <- t.n_s + 1

let push_pool t v =
  t.pool <- grow t.pool t.pool_len;
  t.pool.(t.pool_len) <- v;
  t.pool_len <- t.pool_len + 1

let bad_select t o e = fail "select %S: expected tv.attr=value" (sub t o e)

let parse_select_item t o e =
  let eq = find_char t.buf o e '=' in
  if eq < 0 then bad_select t o e;
  let lo_ = trim_start t.buf o eq in
  let le_ = trim_end t.buf lo_ eq in
  let dot = find_char t.buf lo_ le_ '.' in
  if dot < 0 then bad_select t o e;
  let tvo = trim_start t.buf lo_ dot in
  let tve = trim_end t.buf tvo dot in
  let ao = trim_start t.buf (dot + 1) le_ in
  let ae = trim_end t.buf ao le_ in
  let slot = tv_find t tvo tve in
  if slot < 0 then
    fail "select %S: unknown tuple variable %s" (sub t o e) (sub t tvo tve);
  let ti = t.tv_tbl.(slot) in
  let ai = Strmap.find_slice t.tab.Symtab.attrs.(ti) t.buf ao (ae - ao) in
  if ai < 0 then
    fail "select %S: no attribute %s in %s" (sub t o e) (sub t ao ae)
      t.tab.Symtab.tnames.(ti);
  let ro = trim_start t.buf (eq + 1) e in
  let re = trim_end t.buf ro e in
  if
    re - ro >= 2
    && Bytes.unsafe_get t.buf ro = '{'
    && Bytes.unsafe_get t.buf (re - 1) = '}'
  then begin
    (* set: every comma splits (matching String.split_on_char) *)
    let start = t.pool_len in
    let p = ref (ro + 1) in
    for i = ro + 1 to re - 2 do
      if Bytes.unsafe_get t.buf i = ',' then begin
        push_pool t (value_code t ti ai !p i);
        p := i + 1
      end
    done;
    push_pool t (value_code t ti ai !p (re - 1));
    push_sel t slot ai 2 start (t.pool_len - start)
  end
  else begin
    (* "lo..hi" range? *)
    let dots = ref (-1) in
    let i = ref ro in
    while !dots < 0 && !i + 1 < re do
      if Bytes.unsafe_get t.buf !i = '.' && Bytes.unsafe_get t.buf (!i + 1) = '.'
      then dots := !i
      else incr i
    done;
    if !dots >= 0 then begin
      let vlo = value_code t ti ai ro !dots in
      let vhi = value_code t ti ai (!dots + 2) re in
      if vhi < vlo then failwith "Exec.validate: empty range";
      if not t.tab.Symtab.ordinal.(ti).(ai) then
        fail "Exec.validate: range predicate on non-ordinal %s.%s"
          t.tab.Symtab.tnames.(ti)
          t.tab.Symtab.anames.(ti).(ai);
      push_sel t slot ai 1 vlo vhi
    end
    else push_sel t slot ai 0 (value_code t ti ai ro re) 0
  end

(* ---- sections ----------------------------------------------------- *)

(* Commas split items only at brace depth 0, mirroring
   [Protocol.split_top_commas] (depth is fresh per section and may go
   negative on stray '}'s, exactly like the Buffer-based original). *)
let emit_item t f loff llim =
  let o = trim_start t.buf loff llim in
  let e = trim_end t.buf o llim in
  if e > o then f t o e

let parse_section t secoff seclim f =
  let depth = ref 0 in
  let start = ref secoff in
  for i = secoff to seclim - 1 do
    match Bytes.unsafe_get t.buf i with
    | '{' -> incr depth
    | '}' -> decr depth
    | ',' when !depth = 0 ->
      emit_item t f !start i;
      start := i + 1
    | _ -> ()
  done;
  emit_item t f !start seclim

let rec uf_find uf i = if uf.(i) = i then i else uf_find uf uf.(i)

let validate_joins t =
  (* keyjoin forest (checked before any dedup, like the reference: an
     exactly-duplicated join clause is a cycle there too) *)
  t.uf <- grow t.uf t.n_tv;
  for i = 0 to t.n_tv - 1 do
    t.uf.(i) <- i
  done;
  for j = 0 to t.n_j - 1 do
    let a = uf_find t.uf t.j_child.(j) and b = uf_find t.uf t.j_parent.(j) in
    if a = b then
      failwith "Exec.validate: cyclic join graph (not a keyjoin forest)";
    t.uf.(a) <- b
  done;
  for j1 = 0 to t.n_j - 1 do
    for j2 = j1 + 1 to t.n_j - 1 do
      if t.j_child.(j1) = t.j_child.(j2) && t.j_fk.(j1) = t.j_fk.(j2) then
        failwith
          "Exec.validate: foreign key joined twice from the same tuple variable"
    done
  done

let parse t buf ~off ~len =
  t.buf <- buf;
  t.n_tv <- 0;
  t.n_j <- 0;
  t.n_s <- 0;
  t.pool_len <- 0;
  let lim = off + len in
  (* sections split on raw ';' (brace-blind, like String.split_on_char) *)
  let s1 = find_char buf off lim ';' in
  let s2 = if s1 < 0 then -1 else find_char buf (s1 + 1) lim ';' in
  if s2 >= 0 && find_char buf (s2 + 1) lim ';' >= 0 then
    failwith "EST: too many ';'-sections (expected tvars ; joins ; selects)";
  let tv_lim = if s1 < 0 then lim else s1 in
  parse_section t off tv_lim parse_tvar_item;
  if t.n_tv = 0 then failwith "EST: empty tuple-variable section";
  if s1 >= 0 then begin
    let j_lim = if s2 < 0 then lim else s2 in
    parse_section t (s1 + 1) j_lim parse_join_item;
    if s2 >= 0 then parse_section t (s2 + 1) lim parse_select_item
  end;
  validate_joins t

(* ------------------------------------------------------------------ *)
(* In-place canonicalization.  Semantics match [Canon.normalize]:
   predicates first (set values sorted + deduped, singletons and
   degenerate ranges collapse to Eq), then tuple variables sort by
   name, joins and selects sort + dedup.  Joins/selects order here is
   by interned ids — content-determined, so equal queries still get
   equal hashes; [to_query] re-sorts by symbol names to match the
   reference output exactly. *)

let cmp_slice t o1 l1 o2 l2 =
  let n = if l1 < l2 then l1 else l2 in
  let r = ref 0 in
  let i = ref 0 in
  while !r = 0 && !i < n do
    let c =
      Char.code (Bytes.unsafe_get t.buf (o1 + !i))
      - Char.code (Bytes.unsafe_get t.buf (o2 + !i))
    in
    if c <> 0 then r := c;
    incr i
  done;
  if !r <> 0 then !r else compare l1 l2

let cmp_tv t a b =
  cmp_slice t t.tv_off.(a) t.tv_len.(a) t.tv_off.(b) t.tv_len.(b)

let cmp_join t a b =
  let c = compare t.j_child.(a) t.j_child.(b) in
  if c <> 0 then c
  else
    let c = compare t.j_fk.(a) t.j_fk.(b) in
    if c <> 0 then c else compare t.j_parent.(a) t.j_parent.(b)

let cmp_sel t a b =
  let c = compare t.s_tv.(a) t.s_tv.(b) in
  if c <> 0 then c
  else
    let c = compare t.s_attr.(a) t.s_attr.(b) in
    if c <> 0 then c
    else
      let c = compare t.s_kind.(a) t.s_kind.(b) in
      if c <> 0 then c
      else
        match t.s_kind.(a) with
        | 0 -> compare t.s_lo.(a) t.s_lo.(b)
        | 1 ->
          let c = compare t.s_lo.(a) t.s_lo.(b) in
          if c <> 0 then c else compare t.s_hi.(a) t.s_hi.(b)
        | _ ->
          let la = t.s_hi.(a) and lb = t.s_hi.(b) in
          let n = if la < lb then la else lb in
          let r = ref 0 in
          let i = ref 0 in
          while !r = 0 && !i < n do
            let c =
              compare t.pool.(t.s_lo.(a) + !i) t.pool.(t.s_lo.(b) + !i)
            in
            if c <> 0 then r := c;
            incr i
          done;
          if !r <> 0 then !r else compare la lb

let swap a i j =
  let x = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- x

let canon t =
  (* 1. normalize predicates in place *)
  for s = 0 to t.n_s - 1 do
    (match t.s_kind.(s) with
    | 2 ->
      let o = t.s_lo.(s) and n = t.s_hi.(s) in
      (* insertion sort of the pool segment *)
      for i = o + 1 to o + n - 1 do
        let v = t.pool.(i) in
        let j = ref i in
        while !j > o && t.pool.(!j - 1) > v do
          t.pool.(!j) <- t.pool.(!j - 1);
          decr j
        done;
        t.pool.(!j) <- v
      done;
      (* dedup (segment shrinks; pool holes are fine) *)
      let w = ref (o + 1) in
      for i = o + 1 to o + n - 1 do
        if t.pool.(i) <> t.pool.(!w - 1) then begin
          t.pool.(!w) <- t.pool.(i);
          incr w
        end
      done;
      t.s_hi.(s) <- !w - o;
      if t.s_hi.(s) = 1 then begin
        t.s_kind.(s) <- 0;
        t.s_lo.(s) <- t.pool.(o);
        t.s_hi.(s) <- 0
      end
    | 1 ->
      if t.s_lo.(s) = t.s_hi.(s) then begin
        t.s_kind.(s) <- 0;
        t.s_hi.(s) <- 0
      end
    | _ -> ())
  done;
  (* 2. sort tuple variables by name; remap join/select slots *)
  t.perm <- grow t.perm t.n_tv;
  t.inv <- grow t.inv t.n_tv;
  for i = 0 to t.n_tv - 1 do
    t.perm.(i) <- i
  done;
  for i = 1 to t.n_tv - 1 do
    let p = t.perm.(i) in
    let j = ref i in
    while !j > 0 && cmp_tv t t.perm.(!j - 1) p > 0 do
      t.perm.(!j) <- t.perm.(!j - 1);
      decr j
    done;
    t.perm.(!j) <- p
  done;
  for i = 0 to t.n_tv - 1 do
    t.inv.(t.perm.(i)) <- i
  done;
  t.tmp_a <- grow t.tmp_a t.n_tv;
  t.tmp_b <- grow t.tmp_b t.n_tv;
  t.tmp_c <- grow t.tmp_c t.n_tv;
  for i = 0 to t.n_tv - 1 do
    t.tmp_a.(i) <- t.tv_off.(t.perm.(i));
    t.tmp_b.(i) <- t.tv_len.(t.perm.(i));
    t.tmp_c.(i) <- t.tv_tbl.(t.perm.(i))
  done;
  for i = 0 to t.n_tv - 1 do
    t.tv_off.(i) <- t.tmp_a.(i);
    t.tv_len.(i) <- t.tmp_b.(i);
    t.tv_tbl.(i) <- t.tmp_c.(i)
  done;
  for j = 0 to t.n_j - 1 do
    t.j_child.(j) <- t.inv.(t.j_child.(j));
    t.j_parent.(j) <- t.inv.(t.j_parent.(j))
  done;
  for s = 0 to t.n_s - 1 do
    t.s_tv.(s) <- t.inv.(t.s_tv.(s))
  done;
  (* 3. sort + dedup joins *)
  for i = 1 to t.n_j - 1 do
    let j = ref i in
    while !j > 0 && cmp_join t (!j - 1) !j > 0 do
      swap t.j_child (!j - 1) !j;
      swap t.j_fk (!j - 1) !j;
      swap t.j_parent (!j - 1) !j;
      decr j
    done
  done;
  let w = ref 0 in
  for i = 0 to t.n_j - 1 do
    if !w = 0 || cmp_join t (!w - 1) i <> 0 then begin
      t.j_child.(!w) <- t.j_child.(i);
      t.j_fk.(!w) <- t.j_fk.(i);
      t.j_parent.(!w) <- t.j_parent.(i);
      incr w
    end
  done;
  t.n_j <- !w;
  (* 4. sort + dedup selects *)
  for i = 1 to t.n_s - 1 do
    let j = ref i in
    while !j > 0 && cmp_sel t (!j - 1) !j > 0 do
      swap t.s_tv (!j - 1) !j;
      swap t.s_attr (!j - 1) !j;
      swap t.s_kind (!j - 1) !j;
      swap t.s_lo (!j - 1) !j;
      swap t.s_hi (!j - 1) !j;
      decr j
    done
  done;
  let w = ref 0 in
  for i = 0 to t.n_s - 1 do
    if !w = 0 || cmp_sel t (!w - 1) i <> 0 then begin
      t.s_tv.(!w) <- t.s_tv.(i);
      t.s_attr.(!w) <- t.s_attr.(i);
      t.s_kind.(!w) <- t.s_kind.(i);
      t.s_lo.(!w) <- t.s_lo.(i);
      t.s_hi.(!w) <- t.s_hi.(i);
      incr w
    end
  done;
  t.n_s <- !w

(* ------------------------------------------------------------------ *)
(* Canonical hash: FNV over the canonical emission sequence.  Call
   after [canon].  63-bit, never negative. *)

let fnv_basis = 0x811c9dc5
let fnv_prime = 0x01000193

let mix h v = ((h lxor v) * fnv_prime) land max_int

let hash t =
  let h = ref (mix fnv_basis t.n_tv) in
  for i = 0 to t.n_tv - 1 do
    h := mix !h t.tv_tbl.(i);
    h := mix !h t.tv_len.(i);
    for k = t.tv_off.(i) to t.tv_off.(i) + t.tv_len.(i) - 1 do
      h := mix !h (Char.code (Bytes.unsafe_get t.buf k))
    done
  done;
  h := mix !h t.n_j;
  for j = 0 to t.n_j - 1 do
    h := mix !h t.j_child.(j);
    h := mix !h t.j_fk.(j);
    h := mix !h t.j_parent.(j)
  done;
  h := mix !h t.n_s;
  for s = 0 to t.n_s - 1 do
    h := mix !h t.s_tv.(s);
    h := mix !h t.s_attr.(s);
    h := mix !h t.s_kind.(s);
    (match t.s_kind.(s) with
    | 0 -> h := mix !h t.s_lo.(s)
    | 1 ->
      h := mix !h t.s_lo.(s);
      h := mix !h t.s_hi.(s)
    | _ ->
      h := mix !h t.s_hi.(s);
      for k = t.s_lo.(s) to t.s_lo.(s) + t.s_hi.(s) - 1 do
        h := mix !h t.pool.(k)
      done);
    ()
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Immutable canonical vector, stored with cache entries so a hash hit
   can be verified against the live scratch without allocating. *)

module Vec = struct
  type scratch = t

  type t = { ints : int array; names : string }

  (* Matches no real scratch (every query has at least one tuple
     variable) — a placeholder for cache sentinels. *)
  let empty = { ints = [||]; names = "" }

  let of_scratch (s : scratch) =
    let n = ref 2 in
    n := !n + (2 * s.n_tv);
    n := !n + (3 * s.n_j);
    n := !n + 1;
    for k = 0 to s.n_s - 1 do
      n := !n + 3 + (match s.s_kind.(k) with 0 -> 1 | 1 -> 2 | _ -> 1 + s.s_hi.(k))
    done;
    let ints = Array.make !n 0 in
    let w = ref 0 in
    let put v =
      ints.(!w) <- v;
      incr w
    in
    let names = Buffer.create 32 in
    put s.n_tv;
    for i = 0 to s.n_tv - 1 do
      put s.tv_tbl.(i);
      put s.tv_len.(i);
      Buffer.add_subbytes names s.buf s.tv_off.(i) s.tv_len.(i)
    done;
    put s.n_j;
    for j = 0 to s.n_j - 1 do
      put s.j_child.(j);
      put s.j_fk.(j);
      put s.j_parent.(j)
    done;
    put s.n_s;
    for k = 0 to s.n_s - 1 do
      put s.s_tv.(k);
      put s.s_attr.(k);
      put s.s_kind.(k);
      match s.s_kind.(k) with
      | 0 -> put s.s_lo.(k)
      | 1 ->
        put s.s_lo.(k);
        put s.s_hi.(k)
      | _ ->
        put s.s_hi.(k);
        for p = s.s_lo.(k) to s.s_lo.(k) + s.s_hi.(k) - 1 do
          put s.pool.(p)
        done
    done;
    assert (!w = !n);
    { ints; names = Buffer.contents names }

  (* The comparison cursor lives in the scratch ([m_w]/[m_no]/[m_ok])
     and [eat] is a top-level function: a let-bound closure over ref
     cells here would allocate on every warm cache probe. *)
  let eat (s : scratch) ints ni x =
    if s.m_w >= ni || Array.unsafe_get ints s.m_w <> x then s.m_ok <- false;
    s.m_w <- s.m_w + 1

  (* allocation-free equality against a canonicalized scratch *)
  let matches (v : t) (s : scratch) =
    let ints = v.ints in
    let ni = Array.length ints in
    s.m_w <- 0;
    s.m_no <- 0;
    s.m_ok <- true;
    eat s ints ni s.n_tv;
    for i = 0 to s.n_tv - 1 do
      if s.m_ok then begin
        eat s ints ni s.tv_tbl.(i);
        eat s ints ni s.tv_len.(i);
        let len = s.tv_len.(i) in
        if String.length v.names - s.m_no < len then s.m_ok <- false
        else
          for k = 0 to len - 1 do
            if
              String.unsafe_get v.names (s.m_no + k)
              <> Bytes.unsafe_get s.buf (s.tv_off.(i) + k)
            then s.m_ok <- false
          done;
        s.m_no <- s.m_no + len
      end
    done;
    eat s ints ni s.n_j;
    for j = 0 to s.n_j - 1 do
      if s.m_ok then begin
        eat s ints ni s.j_child.(j);
        eat s ints ni s.j_fk.(j);
        eat s ints ni s.j_parent.(j)
      end
    done;
    eat s ints ni s.n_s;
    for k = 0 to s.n_s - 1 do
      if s.m_ok then begin
        eat s ints ni s.s_tv.(k);
        eat s ints ni s.s_attr.(k);
        eat s ints ni s.s_kind.(k);
        match s.s_kind.(k) with
        | 0 -> eat s ints ni s.s_lo.(k)
        | 1 ->
          eat s ints ni s.s_lo.(k);
          eat s ints ni s.s_hi.(k)
        | _ ->
          eat s ints ni s.s_hi.(k);
          for p = s.s_lo.(k) to s.s_lo.(k) + s.s_hi.(k) - 1 do
            eat s ints ni s.pool.(p)
          done
      end
    done;
    s.m_ok && s.m_w = ni && s.m_no = String.length v.names

  let bytes (v : t) = (Array.length v.ints * 8) + String.length v.names

  (* Structural equality of two snapshots — the batch path verifies
     hash hits against materialized snapshots rather than the live
     scratch.  Allocation-free. *)
  let equal (a : t) (b : t) =
    a == b
    || Array.length a.ints = Array.length b.ints
       && String.equal a.names b.names
       &&
       let rec go i = i < 0 || (a.ints.(i) = b.ints.(i) && go (i - 1)) in
       go (Array.length a.ints - 1)
end

(* ------------------------------------------------------------------ *)
(* Materialization (miss path).  The result is exactly
   [Canon.normalize (Qparse.parse ...)]: predicate normalization
   already happened in [canon]; the final sorts below use symbol
   *names*, reproducing the reference's string-keyed orderings. *)

let to_query t =
  let tv_name i = Bytes.sub_string t.buf t.tv_off.(i) t.tv_len.(i) in
  let tvars =
    List.init t.n_tv (fun i -> (tv_name i, t.tab.Symtab.tnames.(t.tv_tbl.(i))))
  in
  let joins =
    List.init t.n_j (fun j ->
        Query.join ~child:(tv_name t.j_child.(j))
          ~fk:t.tab.Symtab.fknames.(t.tv_tbl.(t.j_child.(j))).(t.j_fk.(j))
          ~parent:(tv_name t.j_parent.(j)))
  in
  let selects =
    List.init t.n_s (fun s ->
        let pred =
          match t.s_kind.(s) with
          | 0 -> Query.Eq t.s_lo.(s)
          | 1 -> Query.Range (t.s_lo.(s), t.s_hi.(s))
          | _ ->
            Query.In_set
              (List.init t.s_hi.(s) (fun k -> t.pool.(t.s_lo.(s) + k)))
        in
        {
          Query.sel_tv = tv_name t.s_tv.(s);
          sel_attr = t.tab.Symtab.anames.(t.tv_tbl.(t.s_tv.(s))).(t.s_attr.(s));
          pred;
        })
  in
  let tvars = List.sort compare tvars in
  let joins =
    List.sort_uniq
      (fun a b ->
        compare
          (a.Query.child_tv, a.Query.fk, a.Query.parent_tv)
          (b.Query.child_tv, b.Query.fk, b.Query.parent_tv))
      joins
  in
  let selects =
    List.sort_uniq
      (fun a b ->
        compare
          (a.Query.sel_tv, a.Query.sel_attr, a.Query.pred)
          (b.Query.sel_tv, b.Query.sel_attr, b.Query.pred))
      selects
  in
  Query.create ~tvars ~joins ~selects ()

let n_selects t = t.n_s
