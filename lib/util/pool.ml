(* Domain-based worker pool (OCaml 5 multicore).

   A fixed set of domains block on a shared job queue; [run] submits a
   batch of thunks and waits for all of them, returning results in
   submission order.  Exceptions raised by a thunk are captured and
   re-raised on the calling thread after the whole batch settles, so a
   failing job never wedges the pool or loses its siblings' work. *)

type t = {
  mutable domains : unit Domain.t array;
  jobs : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let default_size () = max 1 (Domain.recommended_domain_count () - 1)

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.jobs then Mutex.unlock t.mutex (* closed: drain done *)
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.mutex;
      job ();
      loop ()
    end
  in
  loop ()

let create ?size () =
  let n = match size with Some n -> max 0 n | None -> default_size () in
  let t =
    {
      domains = [||];
      jobs = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
    }
  in
  t.domains <- Array.init n (fun _ -> Domain.spawn (worker t));
  t

let size t = Array.length t.domains

let run_inline thunks =
  let results = List.map (fun f -> try Ok (f ()) with e -> Error e) thunks in
  List.map (function Ok v -> v | Error e -> raise e) results

let run t thunks =
  if t.closed then invalid_arg "Pool.run: pool is shut down";
  match thunks with
  | [] -> []
  | _ when Array.length t.domains = 0 -> run_inline thunks
  | _ ->
    let n = List.length thunks in
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    Mutex.lock t.mutex;
    List.iteri
      (fun i f ->
        let job () =
          let r = try Ok (f ()) with e -> Error e in
          results.(i) <- Some r;
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock done_mutex;
            Condition.signal done_cond;
            Mutex.unlock done_mutex
          end
        in
        Queue.add job t.jobs)
      thunks;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    Mutex.lock done_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)

let map t f xs = run t (List.map (fun x () -> f x) xs)

let shutdown t =
  if not t.closed then begin
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end
