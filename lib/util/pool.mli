(** Domain-based worker pool (OCaml 5 multicore).

    A fixed set of domains service a shared job queue.  Batches submitted
    with {!run} are executed in parallel and their results returned in
    submission order, so callers that need determinism get it for free:
    parallelism changes scheduling, never the result list's shape.

    Jobs must confine themselves to thread-safe state — anything shared
    must be immutable or protected by the caller. *)

type t

val create : ?size:int -> unit -> t
(** Spawn the worker domains.  [size] defaults to
    [Domain.recommended_domain_count () - 1] (the caller's domain makes up
    the difference); [size:0] gives a degenerate pool whose {!run}
    executes inline on the calling thread — handy for forcing sequential
    execution through the same code path. *)

val default_size : unit -> int

val size : t -> int
(** Number of worker domains (0 for an inline pool). *)

val run : t -> (unit -> 'a) list -> 'a list
(** Execute the thunks in parallel; block until all settle; return results
    in submission order.  If any thunk raised, the first such exception
    (by submission order) is re-raised after the whole batch has
    settled. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs = run t (List.map (fun x () -> f x) xs)]. *)

val shutdown : t -> unit
(** Drain outstanding jobs, stop and join the workers.  Idempotent.
    [run] after shutdown raises [Invalid_argument]. *)
