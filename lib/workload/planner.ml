(* Thin compatibility shim over lib/opt — see planner.mli.  The plan
   enumeration, prefix sub-queries, C_out costing and rank correlation
   all live in {!Selest_opt} now; this module survives so existing
   callers keep their order-based (string list) view of a plan. *)

module Jointree = Selest_opt.Jointree
module Optimizer = Selest_opt.Optimizer

type plan = string list

let plans = Jointree.orders
let prefix_query = Jointree.subquery
let plan_cost estimate q plan = Optimizer.order_cost ~cost:estimate q plan

let best_plan estimate q =
  let result = Optimizer.best ~cost:estimate q in
  match Jointree.order_of result.Optimizer.tree with
  | Some order -> (order, result.Optimizer.cost)
  | None -> assert false (* left-deep DP only builds left-deep trees *)

let rank_correlation = Optimizer.rank_correlation
