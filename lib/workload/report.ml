open Selest_util

let fmt_bytes b = Format.asprintf "%a" Bytesize.pp b

let outcomes_table outcomes =
  let header =
    [| "estimator"; "storage"; "avg err %"; "median %"; "p90 %";
       "q50"; "q90"; "queries"; "skipped" |]
  in
  let rows =
    Array.of_list
      (List.map
         (fun o ->
           [| o.Runner.estimator; fmt_bytes o.Runner.bytes;
              Tablefmt.float_cell o.Runner.avg_error;
              Tablefmt.float_cell o.Runner.median_error;
              Tablefmt.float_cell o.Runner.p90_error;
              Tablefmt.float_cell o.Runner.qerror.Selest_obs.Qerror.p50;
              Tablefmt.float_cell o.Runner.qerror.Selest_obs.Qerror.p90;
              string_of_int o.Runner.n_queries; string_of_int o.Runner.n_unsupported |])
         outcomes)
  in
  Tablefmt.render ~header rows

let sweep_table ~xlabel ~rows =
  let estimators =
    match rows with
    | [] -> []
    | (_, outcomes) :: _ -> List.map (fun o -> o.Runner.estimator) outcomes
  in
  let header =
    Array.of_list
      (xlabel :: List.concat_map (fun e -> [ e ^ " err%"; e ^ " size" ]) estimators)
  in
  let body =
    Array.of_list
      (List.map
         (fun (x, outcomes) ->
           Array.of_list
             (x
             :: List.concat_map
                  (fun o ->
                    [ Tablefmt.float_cell o.Runner.avg_error; fmt_bytes o.Runner.bytes ])
                  outcomes))
         rows)
  in
  Tablefmt.render ~header body

let scatter_summary a b =
  if List.length a <> List.length b then
    invalid_arg "Report.scatter_summary: mismatched query sequences";
  let err (t, e) = Selest_est.Estimator.adjusted_relative_error ~truth:t ~estimate:e in
  let wins_a = ref 0 and wins_b = ref 0 and ties = ref 0 in
  List.iter2
    (fun pa pb ->
      let ea = err pa and eb = err pb in
      if Arrayx.float_equal ~eps:1e-9 ea eb then incr ties
      else if ea < eb then incr wins_a
      else incr wins_b)
    a b;
  let mean l = Arrayx.mean (Array.of_list (List.map err l)) in
  Printf.sprintf
    "queries: %d | first wins: %d | second wins: %d | ties: %d | mean err: %.2f%% vs %.2f%%"
    (List.length a) !wins_a !wins_b !ties (mean a) (mean b)

let print s =
  print_string s;
  flush stdout
