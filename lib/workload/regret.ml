open Selest_util
module Estimator = Selest_est.Estimator
module Optimizer = Selest_opt.Optimizer
module Hashjoin = Selest_opt.Hashjoin

type outcome = {
  estimator : string;
  n_queries : int;
  n_plan_matches : int;
  runtime_regret_mean : float;
  runtime_regret_max : float;
  rows_regret_mean : float;
  rows_regret_max : float;
  n_fallbacks : int;
}

let run ?bushy ?max_queries ?seed db suite ests =
  let cards = Suite.cards db suite in
  let cells = Runner.selected_cells db suite ?max_queries ?seed () in
  let queries =
    Array.map (fun cell -> Suite.query_of_cell suite (Runner.decode cards cell)) cells
  in
  let truth q = Selest_db.Exec.query_size db q in
  let fallback = Optimizer.independence db in
  (* The truth-optimal plan is estimator-independent: optimize and execute
     it once per query, and let every estimator compare against it. *)
  let bests =
    Array.map
      (fun q ->
        let b = Optimizer.best ?bushy ~cost:truth q in
        (b.Optimizer.tree, Hashjoin.run db q b.Optimizer.tree))
      queries
  in
  List.map
    (fun est ->
      if Array.length queries > 0 then est.Estimator.prepare queries.(0);
      let n_matches = ref 0 and n_fallbacks = ref 0 in
      let n = Array.length queries in
      let runtime = Array.make n 1.0 and rows = Array.make n 1.0 in
      Array.iteri
        (fun i q ->
          let best_tree, best_res = bests.(i) in
          let chosen =
            Optimizer.best ?bushy ~fallback ~cost:est.Estimator.estimate q
          in
          n_fallbacks := !n_fallbacks + chosen.Optimizer.n_fallbacks;
          if chosen.Optimizer.tree = best_tree then incr n_matches
            (* same plan: regret is 1.0 by definition, never re-measured *)
          else begin
            let res = Hashjoin.run db q chosen.Optimizer.tree in
            rows.(i) <-
              (1.0 +. float_of_int res.Hashjoin.intermediate_rows)
              /. (1.0 +. float_of_int best_res.Hashjoin.intermediate_rows);
            runtime.(i) <-
              float_of_int res.Hashjoin.total_ns
              /. float_of_int (max 1 best_res.Hashjoin.total_ns)
          end)
        queries;
      let max_of a = Array.fold_left Float.max 1.0 a in
      {
        estimator = est.Estimator.name;
        n_queries = n;
        n_plan_matches = !n_matches;
        runtime_regret_mean = (if n = 0 then 1.0 else Arrayx.mean runtime);
        runtime_regret_max = max_of runtime;
        rows_regret_mean = (if n = 0 then 1.0 else Arrayx.mean rows);
        rows_regret_max = max_of rows;
        n_fallbacks = !n_fallbacks;
      })
    ests
