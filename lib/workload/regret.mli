(** Plan regret: the end-to-end cost of estimation error.

    Q-error says how wrong an estimator's numbers are; regret says how
    much those wrong numbers {e hurt} — the paper's Sec. 1 framing, where
    estimates exist to steer a cost-based optimizer.  For every query in
    a suite we optimize twice: once with exact cardinalities
    ({!Selest_db.Exec.query_size}) and once with the estimator under
    test, then execute both chosen plans with the materializing
    {!Selest_opt.Hashjoin} executor and compare:

    - {e rows regret}: (1 + chosen plan's intermediate rows) /
      (1 + best plan's intermediate rows) — the realized C_out ratio,
      deterministic and >= 1 up to cost ties;
    - {e runtime regret}: chosen wall time / best wall time — noisy but
      honest; exactly 1.0 when the estimator picks the true-optimal tree
      (the same plan is not re-measured).

    An exact-cardinality "estimator" always picks the same tree as the
    truth-driven optimizer, so its regret is exactly 1.0 — the CI gate
    that the whole pipeline (enumeration, costing, execution) is
    self-consistent. *)

type outcome = {
  estimator : string;
  n_queries : int;
  n_plan_matches : int;  (** queries where the chosen tree = the best tree *)
  runtime_regret_mean : float;
  runtime_regret_max : float;
  rows_regret_mean : float;
  rows_regret_max : float;
  n_fallbacks : int;
      (** sub-queries priced by the AVI fallback because the estimator
          raised [Unsupported] *)
}

val run :
  ?bushy:bool ->
  ?max_queries:int ->
  ?seed:int ->
  Selest_db.Database.t ->
  Suite.t ->
  Selest_est.Estimator.t list ->
  outcome list
(** Evaluate every instantiation of the suite (or a deterministic
    subsample of [max_queries], same sampling as {!Runner}).  Each
    estimator's [prepare] is called once with the suite's first query;
    sub-query pricing falls back to {!Selest_opt.Optimizer.independence}
    on [Unsupported].  The suite's skeleton must have at least two tuple
    variables. *)
