(** A miniature cost-based join-order planner — the paper's motivating
    application (Sec. 1: "cost-based query optimizers use intermediate
    result size estimates to choose the optimal query execution plan").

    Plans are left-deep orders over the query's tuple variables in which
    every prefix is connected through the query's join clauses.  A plan's
    cost is the classic sum of intermediate result sizes; cardinalities
    come from any size oracle, so the same machinery ranks plans with the
    exact executor, with a PRM, or with a naive AVI estimator — making the
    impact of estimation quality on plan choice directly measurable.

    This module is a compatibility shim: enumeration, costing and rank
    correlation now live in {!Selest_opt} ({!Selest_opt.Jointree},
    {!Selest_opt.Optimizer}), which adds dynamic programming, bushy
    trees, graceful fallback on unsupported sub-queries and a physical
    executor.  New code should use {!Selest_opt} directly; this order-
    based (string list) view is kept for existing callers. *)

type plan = string list
(** Tuple variables in join order; the first two form the initial join. *)

val plans : Selest_db.Query.t -> plan list
(** All connected left-deep orders.  Raises [Invalid_argument] if the
    query has fewer than two tuple variables or a disconnected join
    graph. *)

val prefix_query : Selest_db.Query.t -> string list -> Selest_db.Query.t
(** The sub-query over a plan prefix: those tuple variables, the joins
    among them, and the selects on them. *)

val plan_cost : (Selest_db.Query.t -> float) -> Selest_db.Query.t -> plan -> float
(** Sum of the estimated sizes of every strict prefix of length >= 2,
    plus the final result — the standard C_out cost. *)

val best_plan : (Selest_db.Query.t -> float) -> Selest_db.Query.t -> plan * float
(** The cost-minimal plan under the given size oracle. *)

val rank_correlation : float list -> float list -> float
(** Spearman rank correlation between two cost vectors over the same plan
    list — how faithfully an estimator reproduces the true plan ranking. *)
