open Selest_util
open Selest_prob

type outcome = {
  estimator : string;
  bytes : int;
  avg_error : float;
  median_error : float;
  p90_error : float;
  n_queries : int;
  n_unsupported : int;
  qerror : Selest_obs.Qerror.summary;
}

let selected_cells db suite ?max_queries ?(seed = 0) () =
  let total = Suite.n_queries db suite in
  match max_queries with
  | Some m when m < total ->
    let rng = Rng.create (seed lxor 0xCE11) in
    Rng.sample_without_replacement rng m total
  | _ -> Array.init total (fun i -> i)

let decode cards cell =
  let d = Array.length cards in
  let values = Array.make d 0 in
  let rem = ref cell in
  for i = d - 1 downto 0 do
    values.(i) <- !rem mod cards.(i);
    rem := !rem / cards.(i)
  done;
  values

let evaluate db suite est ?max_queries ?seed () =
  let truth_table = Suite.ground_truth db suite in
  let cards = Suite.cards db suite in
  let cells = selected_cells db suite ?max_queries ?seed () in
  (* All of a suite's instantiations share one skeleton: let the
     estimator compile its plan / posterior once, outside the per-query
     loop. *)
  if Array.length cells > 0 then
    est.Selest_est.Estimator.prepare
      (Suite.query_of_cell suite (decode cards cells.(0)));
  let pairs = ref [] in
  let unsupported = ref 0 in
  Array.iter
    (fun cell ->
      let values = decode cards cell in
      let truth = Contingency.get truth_table values in
      let q = Suite.query_of_cell suite values in
      match est.Selest_est.Estimator.estimate q with
      | estimate -> pairs := (truth, estimate) :: !pairs
      | exception Selest_est.Estimator.Unsupported _ -> incr unsupported)
    cells;
  (List.rev !pairs, !unsupported)

let run db suite est ?max_queries ?seed () =
  let pairs, n_unsupported = evaluate db suite est ?max_queries ?seed () in
  let errors =
    Array.of_list
      (List.map
         (fun (truth, estimate) -> Selest_est.Estimator.adjusted_relative_error ~truth ~estimate)
         pairs)
  in
  {
    estimator = est.Selest_est.Estimator.name;
    bytes = est.Selest_est.Estimator.bytes;
    avg_error = Arrayx.mean errors;
    median_error = Arrayx.median errors;
    p90_error = Arrayx.percentile errors 90.0;
    n_queries = Array.length errors;
    n_unsupported;
    qerror = Selest_obs.Qerror.(summarize (of_pairs pairs));
  }

let run_all db suite ests ?max_queries ?seed () =
  List.map (fun est -> run db suite est ?max_queries ?seed ()) ests

let per_query db suite est ?max_queries ?seed () =
  fst (evaluate db suite est ?max_queries ?seed ())
