(** Run estimators against suites and aggregate the paper's error metric. *)

type outcome = {
  estimator : string;
  bytes : int;
  avg_error : float;  (** mean adjusted relative error, % *)
  median_error : float;
  p90_error : float;
  n_queries : int;
  n_unsupported : int;  (** queries the estimator refused (excluded) *)
  qerror : Selest_obs.Qerror.summary;
      (** q-error distribution of the same (truth, estimate) pairs — the
          accuracy health signal the serving layer also tracks *)
}

val run :
  Selest_db.Database.t -> Suite.t -> Selest_est.Estimator.t -> ?max_queries:int -> ?seed:int ->
  unit -> outcome
(** Evaluate every instantiation of the suite (or a deterministic uniform
    subsample of [max_queries] of them) and aggregate the adjusted relative
    error against exact ground truth.  The estimator's [prepare] is called
    once with the suite's first query, so per-skeleton work (plan
    compilation) is paid before the per-query loop. *)

val run_all :
  Selest_db.Database.t -> Suite.t -> Selest_est.Estimator.t list -> ?max_queries:int ->
  ?seed:int -> unit -> outcome list

val per_query :
  Selest_db.Database.t -> Suite.t -> Selest_est.Estimator.t -> ?max_queries:int -> ?seed:int ->
  unit -> (float * float) list
(** (truth, estimate) pairs, for scatter plots like Fig. 5(c). *)

val selected_cells :
  Selest_db.Database.t -> Suite.t -> ?max_queries:int -> ?seed:int -> unit -> int array
(** The suite cells the harness evaluates: all of them, or a
    deterministic uniform subsample of [max_queries].  Exposed so other
    per-query harnesses ({!Regret}) sweep the same queries. *)

val decode : int array -> int -> int array
(** [decode cards cell]: the value combination of a cell index, in
    mixed-radix over the attribute cardinalities. *)
