(* Cost-based join ordering — the paper's motivating application (Sec. 1):
   an optimizer is only as good as its cardinality estimates.  This example
   ranks every left-deep join order of a 3-table query by its estimated
   cost (sum of intermediate result sizes, C_out) under three oracles:

     truth  — the exact executor,
     PRM    — this library's learned model,
     AVI    — per-attribute independence + uniform joins (System-R style),

   then lets each oracle actually *pick* a plan via the `Opt.Optimizer`
   dynamic program and executes the choices with the `Opt.Hashjoin`
   physical executor, rendering estimated vs. actual rows per operator.

   Run with: dune exec examples/optimizer.exe *)

open Selest

let () =
  let db = Synth.Tb.generate ~seed:11 () in
  let model = learn_prm ~budget_bytes:6_000 db in
  let prm_oracle = Prm.Estimate.cached_estimator model ~sizes:(Prm.Estimate.sizes_of_db db) in
  let avi = Est.Avi.build db in
  let truth q = true_size db q in

  (* Roommate contacts of elderly patients with non-unique strains.  The
     elderly–roommate pair is negatively correlated (AVI overestimates the
     contact-patient intermediate ~20x), while the non-unique-strain side
     is inflated by join skew (AVI underestimates it).  Under independence
     the plan ranking flips. *)
  let q =
    Db.Query.create
      ~tvars:[ ("c", "contact"); ("p", "patient"); ("s", "strain") ]
      ~joins:
        [
          Db.Query.join ~child:"c" ~fk:"patient" ~parent:"p";
          Db.Query.join ~child:"p" ~fk:"strain" ~parent:"s";
        ]
      ~selects:
        [
          Db.Query.eq "c" "Contype" 1;
          Db.Query.range "p" "Age" 4 5;
          Db.Query.eq "s" "Unique" 0;
        ]
      ()
  in
  Format.printf "query: %a@.@." Db.Query.pp q;

  let all = Opt.Jointree.orders q in
  let order_cost oracle p = Opt.Optimizer.order_cost ~cost:oracle q p in
  let costs oracle = List.map (order_cost oracle) all in
  let true_costs = costs truth in
  let prm_costs = costs prm_oracle in
  let avi_costs = costs (fun q -> avi.Est.Estimator.estimate q) in

  print_endline "plan (left-deep order)     |   true cost |    PRM cost |    AVI cost";
  print_endline "---------------------------+-------------+-------------+------------";
  List.iteri
    (fun i plan ->
      Printf.printf "%-27s| %11.0f | %11.0f | %11.0f\n"
        (String.concat " > " plan)
        (List.nth true_costs i) (List.nth prm_costs i) (List.nth avi_costs i))
    all;
  print_newline ();

  (* Let each oracle pick via the DP and pay for its choice for real. *)
  let optimal =
    let r = Opt.Optimizer.best ~cost:truth q in
    float_of_int (Opt.Hashjoin.run db q r.tree).Opt.Hashjoin.intermediate_rows
  in
  let report name oracle =
    let r = Opt.Optimizer.best ~cost:oracle q in
    let exec = Opt.Hashjoin.run db q r.tree in
    let rows = float_of_int exec.Opt.Hashjoin.intermediate_rows in
    Printf.printf "%-5s picks %-14s -> actual C_out %7.0f (%.2fx optimal) | rank corr %.2f\n"
      name
      (Format.asprintf "%a" Opt.Jointree.pp r.tree)
      rows
      ((1.0 +. rows) /. (1.0 +. optimal))
      (Opt.Optimizer.rank_correlation true_costs (costs oracle))
  in
  report "truth" truth;
  report "PRM" prm_oracle;
  report "AVI" (fun q -> avi.Est.Estimator.estimate q);
  print_newline ();

  (* And the full explain surface for the PRM's chosen plan. *)
  let r = Opt.Optimizer.best ~cost:prm_oracle q in
  let exec = Opt.Hashjoin.run db q r.tree in
  print_string (Opt.Explain.render ~est:prm_oracle q exec);
  print_endline
    (Opt.Explain.summary_line
       ~cost_est:(Opt.Optimizer.sum_intermediates ~cost:prm_oracle q r.tree)
       exec)
